#include "workload/corpus.h"

#include <algorithm>

#include "common/random.h"
#include "p3p/policy_xml.h"
#include "p3p/vocab.h"

namespace p3pdb::workload {

using p3p::DataGroup;
using p3p::DataItem;
using p3p::Policy;
using p3p::PolicyStatement;
using p3p::PurposeItem;
using p3p::RecipientItem;
using p3p::Required;

namespace {

/// Statement counts per policy: 29 entries summing to 54 (§6.2: 54
/// statements across 29 policies). The 6-statement entry yields the corpus
/// maximum, the 1-statement entries the minimum.
constexpr int kStatementPlan[] = {2, 1, 3, 1, 2, 1, 2, 2, 1, 3,
                                  1, 2, 1, 2, 1, 4, 2, 1, 2, 1,
                                  3, 1, 2, 1, 2, 1, 2, 1, 6};
static_assert(sizeof(kStatementPlan) / sizeof(int) == 29);

constexpr const char* kCompanies[] = {
    "atlantic-telecom",   "baxter-mutual",     "cascade-air",
    "dynacorp-retail",    "evergreen-bank",    "fairfield-press",
    "granite-insurance",  "horizon-freight",   "ionic-software",
    "juniper-health",     "keystone-motors",   "lakeshore-media",
    "meridian-travel",    "northgate-foods",   "orion-utilities",
    "pinnacle-books",     "quantum-devices",   "redwood-apparel",
    "summit-brokerage",   "tidewater-energy",  "unity-hotels",
    "vanguard-paper",     "westbrook-labs",    "xenon-chemicals",
    "yorktown-steel",     "zephyr-airlines",   "crestview-realty",
    "bluefin-seafoods",   "silverline-credit",
};
static_assert(sizeof(kCompanies) / sizeof(const char*) == 29);

constexpr const char* kConsequenceTemplates[] = {
    "We collect this information to complete and support the activity you "
    "requested on our site, including fulfillment, billing, and customer "
    "service follow-up when something goes wrong with your order.",
    "This information helps us administer the site, diagnose technical "
    "problems, and keep our services running reliably for all visitors.",
    "With this data we tailor the pages you see to your region and "
    "interests so that the catalog you browse is relevant to you.",
    "Aggregate records of page visits let our research group understand "
    "how the site is used and plan capacity for seasonal demand.",
    "If you consent, we analyze your history with us to recommend "
    "products and occasionally bring new offerings to your attention.",
    "Our fulfillment partners receive only what they need to deliver your "
    "purchase to your door and are bound by equivalent privacy practices.",
    "We retain transaction records as required for tax and regulatory "
    "purposes and destroy them on the schedule published in our policy.",
};

constexpr const char* kPlainDataRefs[] = {
    "user.name",
    "user.name.given",
    "user.name.family",
    "user.bdate",
    "user.gender",
    "user.employer",
    "user.jobtitle",
    "user.home-info.postal",
    "user.home-info.postal.street",
    "user.home-info.postal.city",
    "user.home-info.postal.postalcode",
    "user.home-info.telecom.telephone",
    "user.home-info.online.email",
    "user.business-info.postal",
    "user.business-info.online.email",
    "user.login.id",
    "dynamic.clickstream",
    "dynamic.http.useragent",
    "dynamic.searchtext",
    "dynamic.interactionrecord",
    "thirdparty.name",
    "thirdparty.home-info.postal",
};

constexpr const char* kMiscCategories[] = {
    "purchase", "financial", "preference", "content", "demographic",
    "interactive",
};

/// Purposes beyond `current` a statement may add, with whether they can be
/// offered as a choice.
struct ExtraPurpose {
  const char* value;
  bool optable;
};
constexpr ExtraPurpose kExtraPurposes[] = {
    {"admin", false},          {"develop", false},
    {"tailoring", true},       {"pseudo-analysis", true},
    {"pseudo-decision", true}, {"individual-analysis", true},
    {"individual-decision", true}, {"contact", true},
    {"historical", false},     {"telemarketing", true},
    {"other-purpose", true},
};

PolicyStatement MakeStatement(Random* rng, const std::string& company,
                              bool heavy) {
  PolicyStatement stmt;
  // Crawled policies carried long human-readable consequences; compose a
  // few sentences.
  int sentences = heavy ? 5 : 3;
  for (int s = 0; s < sentences; ++s) {
    if (s > 0) stmt.consequence += " ";
    stmt.consequence +=
        kConsequenceTemplates[rng->Uniform(std::size(kConsequenceTemplates))];
  }
  stmt.consequence += " (" + company + ")";

  // Purposes: always `current`, plus 0-3 extras (heavy statements more).
  stmt.purposes.push_back(PurposeItem{"current", Required::kAlways});
  int extra = rng->UniformInt(0, heavy ? 3 : 2);
  std::vector<int> picks;
  while (static_cast<int>(picks.size()) < extra) {
    int idx = rng->UniformInt(0, std::size(kExtraPurposes) - 1);
    if (std::find(picks.begin(), picks.end(), idx) == picks.end()) {
      picks.push_back(idx);
    }
  }
  for (int idx : picks) {
    const ExtraPurpose& p = kExtraPurposes[idx];
    Required required = Required::kAlways;
    if (p.optable && rng->Bernoulli(0.4)) {
      required = rng->Bernoulli(0.5) ? Required::kOptIn : Required::kOptOut;
    }
    stmt.purposes.push_back(PurposeItem{p.value, required});
  }

  // Recipients: always `ours`; sometimes agents or more.
  stmt.recipients.push_back(RecipientItem{"ours", Required::kAlways});
  if (rng->Bernoulli(0.5)) {
    stmt.recipients.push_back(RecipientItem{"same", Required::kAlways});
  }
  if (rng->Bernoulli(0.3)) {
    stmt.recipients.push_back(RecipientItem{
        "delivery",
        rng->Bernoulli(0.3) ? Required::kOptOut : Required::kAlways});
  }
  if (rng->Bernoulli(0.1)) {
    stmt.recipients.push_back(RecipientItem{"other-recipient",
                                            Required::kAlways});
  }

  static constexpr const char* kRetentions[] = {
      "stated-purpose", "stated-purpose", "business-practices",
      "business-practices", "legal-requirement", "indefinitely",
      "no-retention"};
  stmt.retention = kRetentions[rng->Uniform(std::size(kRetentions))];

  // Data items: several plain refs, plus miscdata with categories sometimes.
  DataGroup group;
  int items = rng->UniformInt(5, heavy ? 13 : 9);
  std::vector<int> ref_picks;
  while (static_cast<int>(ref_picks.size()) < items) {
    int idx = rng->UniformInt(0, std::size(kPlainDataRefs) - 1);
    if (std::find(ref_picks.begin(), ref_picks.end(), idx) ==
        ref_picks.end()) {
      ref_picks.push_back(idx);
    }
  }
  for (int idx : ref_picks) {
    group.items.push_back(
        DataItem{kPlainDataRefs[idx], rng->Bernoulli(0.2), {}});
  }
  if (rng->Bernoulli(0.55)) {
    DataItem misc{"dynamic.miscdata", false, {}};
    int cats = rng->UniformInt(1, 2);
    for (int c = 0; c < cats; ++c) {
      std::string cat = kMiscCategories[rng->Uniform(std::size(kMiscCategories))];
      if (std::find(misc.categories.begin(), misc.categories.end(), cat) ==
          misc.categories.end()) {
        misc.categories.push_back(cat);
      }
    }
    group.items.push_back(std::move(misc));
  }
  stmt.data_groups.push_back(std::move(group));
  return stmt;
}

}  // namespace

std::vector<Policy> FortuneCorpus(const CorpusOptions& options) {
  Random rng(options.seed);
  std::vector<Policy> corpus;
  corpus.reserve(options.policy_count);
  for (size_t i = 0; i < options.policy_count; ++i) {
    const std::string company = kCompanies[i % std::size(kCompanies)];
    Policy policy;
    policy.name = company;
    if (i >= std::size(kCompanies)) {
      policy.name += "-" + std::to_string(i / std::size(kCompanies));
    }
    policy.discuri = "http://www." + company + ".example.com/privacy.html";
    policy.access =
        rng.Bernoulli(0.7)
            ? std::string(
                  rng.Bernoulli(0.5) ? "contact-and-other" : "ident-contact")
            : std::string("none");
    for (const char* ref :
         {"business.name", "business.department",
          "business.contact-info.postal.street",
          "business.contact-info.postal.city",
          "business.contact-info.postal.stateprov",
          "business.contact-info.postal.postalcode",
          "business.contact-info.telecom.telephone",
          "business.contact-info.online.email",
          "business.contact-info.online.uri"}) {
      policy.entity.data.push_back(DataItem{ref, false, {}});
    }
    if (rng.Bernoulli(0.4)) {
      p3p::Dispute dispute;
      dispute.resolution_type = "service";
      dispute.service =
          "http://www." + company + ".example.com/customer-care";
      dispute.short_description = "Contact our customer care group";
      policy.disputes.push_back(std::move(dispute));
    }

    const int statements = kStatementPlan[i % std::size(kStatementPlan)];
    const bool heavy = statements >= 4;
    for (int s = 0; s < statements; ++s) {
      policy.statements.push_back(MakeStatement(&rng, company, heavy));
    }
    corpus.push_back(std::move(policy));
  }
  return corpus;
}

p3p::ReferenceFile CorpusReferenceFile(const std::vector<Policy>& corpus) {
  p3p::ReferenceFile rf;
  rf.expiry_max_age = 86400;
  for (const Policy& policy : corpus) {
    p3p::PolicyRef ref;
    ref.about = "/P3P/policies.xml#" + policy.name;
    ref.includes.push_back("/" + policy.name + "/*");
    ref.excludes.push_back("/" + policy.name + "/public-archive/*");
    rf.refs.push_back(std::move(ref));
  }
  return rf;
}

double PolicySizeKb(const Policy& policy) {
  return static_cast<double>(p3p::PolicyToText(policy).size()) / 1024.0;
}

CorpusStats ComputeCorpusStats(const std::vector<Policy>& corpus) {
  CorpusStats stats;
  stats.policies = corpus.size();
  if (corpus.empty()) return stats;
  double total = 0;
  stats.min_kb = 1e9;
  for (const Policy& policy : corpus) {
    stats.statements += policy.statements.size();
    double kb = PolicySizeKb(policy);
    total += kb;
    stats.min_kb = std::min(stats.min_kb, kb);
    stats.max_kb = std::max(stats.max_kb, kb);
  }
  stats.avg_kb = total / static_cast<double>(corpus.size());
  return stats;
}

}  // namespace p3pdb::workload
