// Synthetic stand-in for the paper's crawled policy corpus (§6.2).
//
// The paper crawled Fortune 1000 sites and found 29 P3P policies (1.6 to
// 11.9 KB, mean 4.4 KB, 54 statements in total — about two per policy).
// Those sites and policies are long gone, so this generator synthesizes a
// corpus matching the reported distribution exactly in count and statement
// total and approximately in size, deterministically from a seed so every
// benchmark run sees the same corpus.

#ifndef P3PDB_WORKLOAD_CORPUS_H_
#define P3PDB_WORKLOAD_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "p3p/policy.h"
#include "p3p/reference_file.h"

namespace p3pdb::workload {

struct CorpusOptions {
  uint64_t seed = 2003;       // year of the paper
  size_t policy_count = 29;   // §6.2
};

/// Generates the corpus. With the default policy_count the statement total
/// is exactly 54; other counts scale the fixed per-policy statement plan.
std::vector<p3p::Policy> FortuneCorpus(const CorpusOptions& options = {});

/// A reference file covering one synthetic site: policy i governs the
/// /<policy-name>/* URI subtree.
p3p::ReferenceFile CorpusReferenceFile(
    const std::vector<p3p::Policy>& corpus);

/// Policy size measured like the paper: KB of P3P XML text.
double PolicySizeKb(const p3p::Policy& policy);

struct CorpusStats {
  size_t policies = 0;
  size_t statements = 0;
  double min_kb = 0;
  double max_kb = 0;
  double avg_kb = 0;
};

CorpusStats ComputeCorpusStats(const std::vector<p3p::Policy>& corpus);

}  // namespace p3pdb::workload

#endif  // P3PDB_WORKLOAD_CORPUS_H_
