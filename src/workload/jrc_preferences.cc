#include "workload/jrc_preferences.h"

namespace p3pdb::workload {

using appel::AppelAttribute;
using appel::AppelExpr;
using appel::AppelRule;
using appel::AppelRuleset;
using appel::Connective;

namespace {

AppelExpr Value(std::string name) {
  AppelExpr expr;
  expr.name = std::move(name);
  return expr;
}

AppelExpr ValueRequired(std::string name, std::string required) {
  AppelExpr expr = Value(std::move(name));
  expr.attributes.push_back(AppelAttribute{"required", std::move(required)});
  return expr;
}

AppelExpr OrGroup(std::string name, std::vector<AppelExpr> children) {
  AppelExpr expr;
  expr.name = std::move(name);
  expr.connective = Connective::kOr;
  expr.children = std::move(children);
  return expr;
}

/// POLICY > STATEMENT > inner.
AppelExpr InStatement(AppelExpr inner) {
  AppelExpr statement;
  statement.name = "STATEMENT";
  statement.children.push_back(std::move(inner));
  AppelExpr policy;
  policy.name = "POLICY";
  policy.children.push_back(std::move(statement));
  return policy;
}

/// POLICY > inner (for ACCESS patterns).
AppelExpr InPolicy(AppelExpr inner) {
  AppelExpr policy;
  policy.name = "POLICY";
  policy.children.push_back(std::move(inner));
  return policy;
}

AppelRule BlockRule(AppelExpr pattern, std::string description) {
  AppelRule rule;
  rule.behavior = "block";
  rule.description = std::move(description);
  rule.expressions.push_back(std::move(pattern));
  return rule;
}

AppelRule RequestCatchAll() {
  AppelRule rule;
  rule.behavior = "request";
  rule.description = "accept everything the earlier rules did not block";
  return rule;
}

// ---- The block rules the levels are assembled from ------------------------

AppelRule BlockTelemarketing() {
  return BlockRule(InStatement(OrGroup("PURPOSE", [] {
                     std::vector<AppelExpr> v;
                     v.push_back(Value("telemarketing"));
                     return v;
                   }())),
                   "no telemarketing with my data");
}

AppelRule BlockMandatoryContact() {
  return BlockRule(InStatement(OrGroup("PURPOSE", [] {
                     std::vector<AppelExpr> v;
                     v.push_back(ValueRequired("contact", "always"));
                     return v;
                   }())),
                   "contact for marketing must be opt-in or opt-out");
}

AppelRule BlockAnyContact() {
  return BlockRule(InStatement(OrGroup("PURPOSE", [] {
                     std::vector<AppelExpr> v;
                     v.push_back(Value("contact"));
                     return v;
                   }())),
                   "no marketing contact at all");
}

AppelRule BlockNonEssentialPurposes() {
  std::vector<AppelExpr> purposes;
  for (const char* v : {"admin", "develop", "tailoring", "pseudo-analysis",
                        "pseudo-decision", "individual-analysis"}) {
    purposes.push_back(Value(v));
  }
  purposes.push_back(ValueRequired("individual-decision", "always"));
  purposes.push_back(ValueRequired("contact", "always"));
  for (const char* v :
       {"historical", "telemarketing", "other-purpose", "extension"}) {
    purposes.push_back(Value(v));
  }
  return BlockRule(InStatement(OrGroup("PURPOSE", std::move(purposes))),
                   "only the purpose I came for");
}

AppelRule BlockProfiling() {
  std::vector<AppelExpr> purposes;
  purposes.push_back(Value("pseudo-analysis"));
  purposes.push_back(Value("pseudo-decision"));
  return BlockRule(InStatement(OrGroup("PURPOSE", std::move(purposes))),
                   "no pseudonymous profiling");
}

AppelRule BlockHistoricalAndOther() {
  std::vector<AppelExpr> purposes;
  purposes.push_back(Value("historical"));
  purposes.push_back(Value("other-purpose"));
  return BlockRule(InStatement(OrGroup("PURPOSE", std::move(purposes))),
                   "no archival or unnamed purposes");
}

AppelRule BlockOptOutOnlyConsent() {
  std::vector<AppelExpr> purposes;
  purposes.push_back(ValueRequired("individual-analysis", "opt-out"));
  purposes.push_back(ValueRequired("individual-decision", "opt-out"));
  purposes.push_back(ValueRequired("contact", "opt-out"));
  return BlockRule(InStatement(OrGroup("PURPOSE", std::move(purposes))),
                   "consent must be opt-in, not opt-out");
}

AppelRule BlockBroadRecipients() {
  std::vector<AppelExpr> recipients;
  for (const char* v :
       {"delivery", "other-recipient", "unrelated", "public", "extension"}) {
    recipients.push_back(Value(v));
  }
  return BlockRule(InStatement(OrGroup("RECIPIENT", std::move(recipients))),
                   "data stays with the site and its agents");
}

AppelRule BlockAllThirdParties() {
  std::vector<AppelExpr> recipients;
  for (const char* v : {"same", "delivery", "other-recipient", "unrelated",
                        "public", "extension"}) {
    recipients.push_back(Value(v));
  }
  return BlockRule(InStatement(OrGroup("RECIPIENT", std::move(recipients))),
                   "data stays with the site alone");
}

AppelRule BlockIndefiniteRetention() {
  std::vector<AppelExpr> retentions;
  retentions.push_back(Value("indefinitely"));
  return BlockRule(InStatement(OrGroup("RETENTION", std::move(retentions))),
                   "no indefinite retention");
}

AppelRule BlockLongRetention() {
  std::vector<AppelExpr> retentions;
  retentions.push_back(Value("legal-requirement"));
  retentions.push_back(Value("business-practices"));
  retentions.push_back(Value("indefinitely"));
  return BlockRule(InStatement(OrGroup("RETENTION", std::move(retentions))),
                   "data discarded at the earliest time possible");
}

AppelRule BlockNoAccess() {
  std::vector<AppelExpr> access;
  access.push_back(Value("none"));
  return BlockRule(InPolicy(OrGroup("ACCESS", std::move(access))),
                   "I must be able to review my data");
}

/// The deep pattern: sensitive data categories used for individualized
/// analysis. STATEMENT > {PURPOSE, DATA-GROUP > DATA > CATEGORIES} — the
/// rule whose XTABLE translation exceeds a bounded complexity budget.
AppelRule BlockSensitiveProfiling() {
  AppelExpr purpose = OrGroup("PURPOSE", [] {
    std::vector<AppelExpr> v;
    v.push_back(Value("individual-analysis"));
    v.push_back(Value("individual-decision"));
    return v;
  }());

  AppelExpr categories = OrGroup("CATEGORIES", [] {
    std::vector<AppelExpr> v;
    v.push_back(Value("health"));
    v.push_back(Value("financial"));
    return v;
  }());
  AppelExpr data;
  data.name = "DATA";
  data.children.push_back(std::move(categories));
  AppelExpr group;
  group.name = "DATA-GROUP";
  group.children.push_back(std::move(data));

  AppelExpr statement;
  statement.name = "STATEMENT";
  statement.connective = Connective::kAnd;
  statement.children.push_back(std::move(purpose));
  statement.children.push_back(std::move(group));
  AppelExpr policy;
  policy.name = "POLICY";
  policy.children.push_back(std::move(statement));
  return BlockRule(std::move(policy),
                   "no profiling on my health or financial data");
}

}  // namespace

std::span<const PreferenceLevel> AllPreferenceLevels() {
  static constexpr PreferenceLevel kLevels[] = {
      PreferenceLevel::kVeryHigh, PreferenceLevel::kHigh,
      PreferenceLevel::kMedium, PreferenceLevel::kLow,
      PreferenceLevel::kVeryLow};
  return kLevels;
}

const char* PreferenceLevelName(PreferenceLevel level) {
  switch (level) {
    case PreferenceLevel::kVeryHigh:
      return "Very High";
    case PreferenceLevel::kHigh:
      return "High";
    case PreferenceLevel::kMedium:
      return "Medium";
    case PreferenceLevel::kLow:
      return "Low";
    case PreferenceLevel::kVeryLow:
      return "Very Low";
  }
  return "?";
}

size_t ExpectedRuleCount(PreferenceLevel level) {
  switch (level) {
    case PreferenceLevel::kVeryHigh:
      return 10;
    case PreferenceLevel::kHigh:
      return 7;
    case PreferenceLevel::kMedium:
      return 4;
    case PreferenceLevel::kLow:
      return 2;
    case PreferenceLevel::kVeryLow:
      return 1;
  }
  return 0;
}

appel::AppelRuleset JrcPreference(PreferenceLevel level) {
  AppelRuleset ruleset;
  switch (level) {
    case PreferenceLevel::kVeryLow:
      // 1 rule: accept everything.
      break;
    case PreferenceLevel::kLow:
      ruleset.rules.push_back(BlockTelemarketing());
      break;
    case PreferenceLevel::kMedium:
      ruleset.rules.push_back(BlockTelemarketing());
      ruleset.rules.push_back(BlockMandatoryContact());
      ruleset.rules.push_back(BlockSensitiveProfiling());
      break;
    case PreferenceLevel::kHigh:
      ruleset.rules.push_back(BlockNonEssentialPurposes());
      ruleset.rules.push_back(BlockTelemarketing());
      ruleset.rules.push_back(BlockMandatoryContact());
      ruleset.rules.push_back(BlockBroadRecipients());
      ruleset.rules.push_back(BlockIndefiniteRetention());
      ruleset.rules.push_back(BlockNoAccess());
      break;
    case PreferenceLevel::kVeryHigh:
      ruleset.rules.push_back(BlockNonEssentialPurposes());
      ruleset.rules.push_back(BlockTelemarketing());
      ruleset.rules.push_back(BlockAnyContact());
      ruleset.rules.push_back(BlockProfiling());
      ruleset.rules.push_back(BlockHistoricalAndOther());
      ruleset.rules.push_back(BlockOptOutOnlyConsent());
      ruleset.rules.push_back(BlockAllThirdParties());
      ruleset.rules.push_back(BlockLongRetention());
      ruleset.rules.push_back(BlockNoAccess());
      break;
  }
  ruleset.rules.push_back(RequestCatchAll());
  return ruleset;
}

double PreferenceSizeKb(const appel::AppelRuleset& ruleset) {
  return static_cast<double>(appel::RulesetToText(ruleset).size()) / 1024.0;
}

}  // namespace p3pdb::workload
