// The JRC test-suite preferences (paper §6.2, Figure 19).
//
// The Joint Research Centre shipped five APPEL preferences at increasing
// privacy sensitivity — Very High (10 rules, 3.1 KB) down to Very Low
// (1 rule, 0.3 KB). The originals are long gone with p3p.jrc.it, so these
// are reconstructions that match Figure 19's rule counts exactly and the
// reported sizes approximately, with semantics in the spirit of the
// era's user agents (Privacy Bird's high/medium/low settings):
// higher sensitivity adds rules that block more purposes, recipients,
// retentions, and sensitive data categories.
//
// The Medium preference deliberately carries the deepest pattern
// (STATEMENT > DATA-GROUP > DATA > CATEGORIES): its XTABLE translation
// exceeds a bounded statement complexity budget, reproducing the missing
// Medium cell of Figure 21.

#ifndef P3PDB_WORKLOAD_JRC_PREFERENCES_H_
#define P3PDB_WORKLOAD_JRC_PREFERENCES_H_

#include <span>
#include <string>

#include "appel/model.h"

namespace p3pdb::workload {

enum class PreferenceLevel { kVeryHigh, kHigh, kMedium, kLow, kVeryLow };

/// The five levels, most sensitive first (Figure 19's row order).
std::span<const PreferenceLevel> AllPreferenceLevels();

const char* PreferenceLevelName(PreferenceLevel level);

/// Figure 19's rule count for the level (10/7/4/2/1).
size_t ExpectedRuleCount(PreferenceLevel level);

/// The reconstructed preference for the level.
appel::AppelRuleset JrcPreference(PreferenceLevel level);

/// Size of a preference, measured like the paper: KB of APPEL XML text.
double PreferenceSizeKb(const appel::AppelRuleset& ruleset);

}  // namespace p3pdb::workload

#endif  // P3PDB_WORKLOAD_JRC_PREFERENCES_H_
