#include "workload/paper_examples.h"

#include "appel/model.h"
#include "p3p/policy_xml.h"

namespace p3pdb::workload {

using appel::AppelExpr;
using appel::AppelRule;
using appel::AppelRuleset;
using appel::Connective;
using p3p::DataGroup;
using p3p::DataItem;
using p3p::Policy;
using p3p::PolicyStatement;
using p3p::PurposeItem;
using p3p::RecipientItem;
using p3p::Required;

Policy VolgaPolicy() {
  Policy policy;
  policy.name = "volga";
  policy.discuri = "http://volga.example.com/privacy.html";
  policy.opturi = "http://volga.example.com/preferences";
  policy.access = "contact-and-other";
  policy.entity.data.push_back(DataItem{"business.name", false, {}});
  policy.entity.data.push_back(
      DataItem{"business.contact-info.online.email", false, {}});

  // Statement 1: name, postal address and purchase data, used to complete
  // the current transaction, kept no longer than needed.
  PolicyStatement s1;
  s1.consequence =
      "We use this information to fulfill your book order and ship it to "
      "you.";
  s1.purposes.push_back(PurposeItem{"current", Required::kAlways});
  s1.recipients.push_back(RecipientItem{"ours", Required::kAlways});
  s1.recipients.push_back(RecipientItem{"same", Required::kAlways});
  s1.retention = "stated-purpose";
  DataGroup g1;
  g1.items.push_back(DataItem{"user.name", false, {}});
  g1.items.push_back(DataItem{"user.home-info.postal", false, {}});
  g1.items.push_back(DataItem{"dynamic.miscdata", false, {"purchase"}});
  s1.data_groups.push_back(std::move(g1));
  policy.statements.push_back(std::move(s1));

  // Statement 2: purchase history for opt-in personalized recommendations
  // emailed to the customer.
  PolicyStatement s2;
  s2.consequence =
      "With your consent we analyze your purchase history to email you "
      "personalized book recommendations.";
  s2.purposes.push_back(
      PurposeItem{"individual-decision", Required::kOptIn});
  s2.purposes.push_back(PurposeItem{"contact", Required::kOptIn});
  s2.recipients.push_back(RecipientItem{"ours", Required::kAlways});
  s2.retention = "business-practices";
  DataGroup g2;
  g2.items.push_back(DataItem{"user.home-info.online.email", false, {}});
  g2.items.push_back(DataItem{"dynamic.miscdata", false, {"purchase"}});
  s2.data_groups.push_back(std::move(g2));
  policy.statements.push_back(std::move(s2));

  return policy;
}

std::string VolgaPolicyXml() { return p3p::PolicyToText(VolgaPolicy()); }

namespace {

AppelExpr ValueExpr(std::string name) {
  AppelExpr expr;
  expr.name = std::move(name);
  return expr;
}

AppelExpr ValueExprRequired(std::string name, std::string required) {
  AppelExpr expr;
  expr.name = std::move(name);
  expr.attributes.push_back(appel::AppelAttribute{"required",
                                                  std::move(required)});
  return expr;
}

/// Wraps `inner` in POLICY > STATEMENT > inner.
AppelExpr PolicyStatementWrap(AppelExpr inner) {
  AppelExpr statement;
  statement.name = "STATEMENT";
  statement.children.push_back(std::move(inner));
  AppelExpr policy;
  policy.name = "POLICY";
  policy.children.push_back(std::move(statement));
  return policy;
}

}  // namespace

AppelRuleset JanePreference() {
  AppelRuleset ruleset;

  // Rule 1: block every purpose other than current; individual-decision and
  // contact are tolerated only when the site offers opt-in/opt-out (i.e.
  // blocked when required="always").
  {
    AppelExpr purpose;
    purpose.name = "PURPOSE";
    purpose.connective = Connective::kOr;
    for (const char* v : {"admin", "develop", "tailoring", "pseudo-analysis",
                          "pseudo-decision", "individual-analysis"}) {
      purpose.children.push_back(ValueExpr(v));
    }
    purpose.children.push_back(
        ValueExprRequired("individual-decision", "always"));
    purpose.children.push_back(ValueExprRequired("contact", "always"));
    for (const char* v :
         {"historical", "telemarketing", "other-purpose", "extension"}) {
      purpose.children.push_back(ValueExpr(v));
    }
    AppelRule rule;
    rule.behavior = "block";
    rule.expressions.push_back(PolicyStatementWrap(std::move(purpose)));
    ruleset.rules.push_back(std::move(rule));
  }

  // Rule 2: block recipients other than ours/same.
  {
    AppelExpr recipient;
    recipient.name = "RECIPIENT";
    recipient.connective = Connective::kOr;
    for (const char* v : {"delivery", "other-recipient", "unrelated",
                          "public", "extension"}) {
      recipient.children.push_back(ValueExpr(v));
    }
    AppelRule rule;
    rule.behavior = "block";
    rule.expressions.push_back(PolicyStatementWrap(std::move(recipient)));
    ruleset.rules.push_back(std::move(rule));
  }

  // Final catch-all: request everything else.
  AppelRule otherwise;
  otherwise.behavior = "request";
  ruleset.rules.push_back(std::move(otherwise));
  return ruleset;
}

std::string JanePreferenceXml() {
  return appel::RulesetToText(JanePreference());
}

AppelRule JaneSimplifiedFirstRule() {
  AppelExpr purpose;
  purpose.name = "PURPOSE";
  purpose.connective = Connective::kOr;
  purpose.children.push_back(ValueExpr("admin"));
  purpose.children.push_back(ValueExprRequired("contact", "always"));
  AppelRule rule;
  rule.behavior = "block";
  rule.expressions.push_back(PolicyStatementWrap(std::move(purpose)));
  return rule;
}

p3p::ReferenceFile VolgaReferenceFile() {
  p3p::ReferenceFile rf;
  rf.expiry_max_age = 86400;
  p3p::PolicyRef ref;
  ref.about = "/P3P/policies.xml#volga";
  ref.includes.push_back("/*");
  ref.excludes.push_back("/about/*");
  ref.cookie_includes.push_back("/*");
  rf.refs.push_back(std::move(ref));
  return rf;
}

}  // namespace p3pdb::workload
