// The running examples of the paper's §2: Volga the bookseller's privacy
// policy (Figure 1) and Jane's APPEL preference (Figure 2).
//
// Per the paper's walk-through, Volga's policy *conforms* to Jane's
// preference: her first rule does not fire (the only overlapping purposes,
// individual-decision and contact, carry required="opt-in" in the policy
// while her rule demands "always"), her second rule does not fire (none of
// the blocked recipients appear), and the final catch-all requests the
// page. Tests pin this outcome on every engine.

#ifndef P3PDB_WORKLOAD_PAPER_EXAMPLES_H_
#define P3PDB_WORKLOAD_PAPER_EXAMPLES_H_

#include <string>

#include "appel/model.h"
#include "p3p/policy.h"
#include "p3p/reference_file.h"

namespace p3pdb::workload {

/// Volga's policy (Figure 1), as a model.
p3p::Policy VolgaPolicy();

/// Volga's policy as P3P XML text.
std::string VolgaPolicyXml();

/// Jane's preference (Figure 2): two block rules plus a request catch-all.
appel::AppelRuleset JanePreference();

/// Jane's preference as APPEL XML text.
std::string JanePreferenceXml();

/// The simplified first rule of Jane's preference used in the paper's
/// translation examples (Figure 12): block if PURPOSE contains admin, or
/// contact with required="always".
appel::AppelRule JaneSimplifiedFirstRule();

/// A small reference file for volga.example.com: the whole site is covered
/// by the policy, except the /about area.
p3p::ReferenceFile VolgaReferenceFile();

}  // namespace p3pdb::workload

#endif  // P3PDB_WORKLOAD_PAPER_EXAMPLES_H_
