#include "workload/random_preferences.h"

#include <span>

#include "p3p/vocab.h"

namespace p3pdb::workload {

using appel::AppelAttribute;
using appel::AppelExpr;
using appel::AppelRule;
using appel::AppelRuleset;
using appel::Connective;

namespace {

Connective RandomConnective(Random* rng, bool allow_exact) {
  static constexpr Connective kBasic[] = {
      Connective::kAnd, Connective::kOr, Connective::kNonAnd,
      Connective::kNonOr};
  static constexpr Connective kAll[] = {
      Connective::kAnd,     Connective::kOr,      Connective::kNonAnd,
      Connective::kNonOr,   Connective::kAndExact, Connective::kOrExact};
  if (allow_exact) return kAll[rng->Uniform(std::size(kAll))];
  return kBasic[rng->Uniform(std::size(kBasic))];
}

AppelExpr Value(std::string name) {
  AppelExpr e;
  e.name = std::move(name);
  return e;
}

/// A vocabulary group expression (PURPOSE/RECIPIENT/CATEGORIES/...) with
/// 1-4 distinct values, a random connective, and occasional required
/// attributes.
AppelExpr RandomValueGroup(Random* rng, const char* group_name,
                           std::span<const std::string_view> values,
                           bool allow_required, bool allow_exact) {
  AppelExpr group;
  group.name = group_name;
  group.connective = RandomConnective(rng, allow_exact);
  int count = rng->UniformInt(1, 4);
  std::vector<size_t> picks;
  while (static_cast<int>(picks.size()) < count) {
    size_t idx = rng->Uniform(values.size());
    bool duplicate = false;
    for (size_t p : picks) duplicate |= p == idx;
    if (!duplicate) picks.push_back(idx);
  }
  for (size_t idx : picks) {
    AppelExpr value = Value(std::string(values[idx]));
    if (allow_required && rng->Bernoulli(0.3)) {
      static constexpr const char* kRequired[] = {"always", "opt-in",
                                                  "opt-out"};
      value.attributes.push_back(
          AppelAttribute{"required", kRequired[rng->Uniform(3)]});
    }
    group.children.push_back(std::move(value));
  }
  return group;
}

AppelExpr RandomDataGroupPattern(Random* rng, bool allow_exact,
                                 bool allow_categories) {
  static constexpr std::string_view kRefs[] = {
      "#user.name",
      "#user.home-info.postal",
      "#user.home-info.online.email",
      "#user.bdate",
      "#dynamic.clickstream",
      "#dynamic.miscdata",
      "#user.login.id",
  };
  AppelExpr group;
  group.name = "DATA-GROUP";
  group.connective = RandomConnective(rng, allow_exact);
  int count = rng->UniformInt(1, 2);
  for (int i = 0; i < count; ++i) {
    AppelExpr data;
    data.name = "DATA";
    if (rng->Bernoulli(0.7)) {
      data.attributes.push_back(AppelAttribute{
          "ref", std::string(kRefs[rng->Uniform(std::size(kRefs))])});
    }
    if (allow_categories && rng->Bernoulli(0.5)) {
      data.children.push_back(RandomValueGroup(
          rng, "CATEGORIES", p3p::Categories(), false, allow_exact));
    }
    group.children.push_back(std::move(data));
  }
  return group;
}

AppelExpr RandomStatementPattern(Random* rng,
                                 const RandomPreferenceOptions& options) {
  AppelExpr statement;
  statement.name = "STATEMENT";
  statement.connective = rng->Bernoulli(0.8) ? Connective::kAnd
                                             : Connective::kOr;
  int parts = rng->UniformInt(1, 3);
  for (int i = 0; i < parts; ++i) {
    switch (rng->Uniform(4)) {
      case 0:
        statement.children.push_back(
            RandomValueGroup(rng, "PURPOSE", p3p::Purposes(), true,
                             options.allow_exact_connectives));
        break;
      case 1:
        statement.children.push_back(
            RandomValueGroup(rng, "RECIPIENT", p3p::Recipients(), true,
                             options.allow_exact_connectives));
        break;
      case 2: {
        // RETENTION is single-valued; exact connectives over it are only
        // supported by the optimized translator, so keep basic ones.
        AppelExpr retention = RandomValueGroup(
            rng, "RETENTION", p3p::Retentions(), false, false);
        statement.children.push_back(std::move(retention));
        break;
      }
      default:
        statement.children.push_back(RandomDataGroupPattern(
            rng, options.allow_exact_connectives,
            options.allow_category_patterns));
        break;
    }
  }
  return statement;
}

}  // namespace

AppelRuleset RandomPreference(Random* rng,
                              const RandomPreferenceOptions& options) {
  AppelRuleset ruleset;
  int block_rules = rng->UniformInt(1, options.max_rules - 1);
  for (int i = 0; i < block_rules; ++i) {
    AppelRule rule;
    rule.behavior = rng->Bernoulli(0.8) ? "block" : "limited";
    auto make_policy_expr = [&] {
      AppelExpr policy;
      policy.name = "POLICY";
      if (rng->Bernoulli(0.15)) {
        // An ACCESS pattern directly under POLICY.
        policy.children.push_back(RandomValueGroup(
            rng, "ACCESS", p3p::AccessValues(), false, false));
      } else {
        policy.children.push_back(RandomStatementPattern(rng, options));
      }
      return policy;
    };
    rule.expressions.push_back(make_policy_expr());
    // Occasionally a rule with two POLICY expressions joined by a
    // rule-level connective (exact connectives are undefined at rule
    // level).
    if (rng->Bernoulli(0.25)) {
      rule.expressions.push_back(make_policy_expr());
      rule.connective = RandomConnective(rng, /*allow_exact=*/false);
    }
    ruleset.rules.push_back(std::move(rule));
  }
  AppelRule catch_all;
  catch_all.behavior = "request";
  ruleset.rules.push_back(std::move(catch_all));
  return ruleset;
}

}  // namespace p3pdb::workload
