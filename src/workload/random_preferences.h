// Random APPEL preference generator for property-based testing.
//
// Draws rulesets from the full pattern grammar the engines support —
// PURPOSE/RECIPIENT/RETENTION/ACCESS/DATA-GROUP/DATA/CATEGORIES patterns
// with all six connectives and required-attribute tests — so differential
// tests can check that every engine computes identical outcomes on inputs
// no one hand-picked.

#ifndef P3PDB_WORKLOAD_RANDOM_PREFERENCES_H_
#define P3PDB_WORKLOAD_RANDOM_PREFERENCES_H_

#include "appel/model.h"
#include "common/random.h"

namespace p3pdb::workload {

struct RandomPreferenceOptions {
  int max_rules = 5;
  /// Include and-exact / or-exact connectives. The simple-schema SQL and
  /// XQuery translators reject these by design, so cross-engine tests that
  /// include those engines must generate without them.
  bool allow_exact_connectives = false;
  /// Include CATEGORIES patterns (requires augmented evidence to be
  /// meaningful; all server configurations in tests augment at install).
  bool allow_category_patterns = true;
};

/// Generates a valid ruleset: 1..max_rules-1 block/limited rules followed
/// by a request catch-all.
appel::AppelRuleset RandomPreference(Random* rng,
                                     const RandomPreferenceOptions& options);

}  // namespace p3pdb::workload

#endif  // P3PDB_WORKLOAD_RANDOM_PREFERENCES_H_
