#include "xml/node.h"

namespace p3pdb::xml {

std::string_view Element::LocalName() const {
  size_t colon = name_.find(':');
  if (colon == std::string::npos) return name_;
  return std::string_view(name_).substr(colon + 1);
}

std::string_view Element::Prefix() const {
  size_t colon = name_.find(':');
  if (colon == std::string::npos) return {};
  return std::string_view(name_).substr(0, colon);
}

std::optional<std::string_view> Element::Attr(std::string_view name) const {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return std::string_view(a.value);
  }
  return std::nullopt;
}

std::string_view Element::AttrOr(std::string_view name,
                                 std::string_view fallback) const {
  std::optional<std::string_view> v = Attr(name);
  return v.has_value() ? *v : fallback;
}

void Element::SetAttr(std::string_view name, std::string_view value) {
  for (Attribute& a : attributes_) {
    if (a.name == name) {
      a.value = std::string(value);
      return;
    }
  }
  attributes_.push_back(Attribute{std::string(name), std::string(value)});
}

Element* Element::AddChild(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return children_.back().get();
}

Element* Element::AddChild(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

namespace {
bool LocalNameMatches(const Element& e, std::string_view local_name) {
  return e.LocalName() == local_name;
}
}  // namespace

const Element* Element::FindChild(std::string_view local_name) const {
  for (const auto& c : children_) {
    if (LocalNameMatches(*c, local_name)) return c.get();
  }
  return nullptr;
}

Element* Element::FindChild(std::string_view local_name) {
  for (auto& c : children_) {
    if (LocalNameMatches(*c, local_name)) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::FindChildren(
    std::string_view local_name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (LocalNameMatches(*c, local_name)) out.push_back(c.get());
  }
  return out;
}

std::unique_ptr<Element> Element::Clone() const {
  auto copy = std::make_unique<Element>(name_);
  copy->text_ = text_;
  copy->attributes_ = attributes_;
  copy->children_.reserve(children_.size());
  for (const auto& c : children_) {
    copy->children_.push_back(c->Clone());
  }
  return copy;
}

size_t Element::SubtreeSize() const {
  size_t n = 1;
  for (const auto& c : children_) n += c->SubtreeSize();
  return n;
}

}  // namespace p3pdb::xml
