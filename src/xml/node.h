// A small XML document object model.
//
// P3P policies, APPEL preferences, and reference files are all XML, and no
// external XML library is available, so p3pdb carries its own DOM. The model
// is element-centric: each element stores its qualified name, its attributes
// in document order, its child elements in document order, and the
// concatenation of its directly-contained text. This is sufficient for the
// P3P family of documents, where mixed content only appears in
// human-readable elements such as CONSEQUENCE.
//
// Namespaces are handled at the prefix level: "appel:RULE" has prefix
// "appel" and local name "RULE". The P3P/APPEL documents use fixed,
// well-known prefixes, so full URI resolution is not required; xmlns
// declarations are retained as ordinary attributes.

#ifndef P3PDB_XML_NODE_H_
#define P3PDB_XML_NODE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace p3pdb::xml {

/// A name="value" pair on an element, in document order.
struct Attribute {
  std::string name;   // qualified, e.g. "appel:connective"
  std::string value;  // entity-decoded
};

/// An XML element. Owns its children.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  /// Qualified name as written, e.g. "appel:RULE".
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Local part of the name ("RULE" for "appel:RULE").
  std::string_view LocalName() const;
  /// Namespace prefix ("appel" for "appel:RULE"), empty if none.
  std::string_view Prefix() const;

  /// Directly-contained character data, entity-decoded and concatenated.
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void AppendText(std::string_view more) { text_.append(more); }

  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Value of the attribute with the given qualified name, if present.
  std::optional<std::string_view> Attr(std::string_view name) const;

  /// Value of the attribute, or `fallback` when absent.
  std::string_view AttrOr(std::string_view name,
                          std::string_view fallback) const;

  bool HasAttr(std::string_view name) const { return Attr(name).has_value(); }

  /// Sets (or overwrites) an attribute.
  void SetAttr(std::string_view name, std::string_view value);

  const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }

  /// Appends a child element and returns a pointer to it.
  Element* AddChild(std::string name);
  Element* AddChild(std::unique_ptr<Element> child);

  /// First child whose local name matches, or nullptr.
  const Element* FindChild(std::string_view local_name) const;
  Element* FindChild(std::string_view local_name);

  /// All children whose local name matches, in document order.
  std::vector<const Element*> FindChildren(std::string_view local_name) const;

  /// Number of child elements.
  size_t ChildCount() const { return children_.size(); }

  /// Deep copy of this element and its subtree.
  std::unique_ptr<Element> Clone() const;

  /// Total number of elements in this subtree (including this one).
  /// Used by workload statistics.
  size_t SubtreeSize() const;

 private:
  std::string name_;
  std::string text_;
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// A parsed XML document: the root element plus any prolog the parser kept.
struct Document {
  std::unique_ptr<Element> root;
};

}  // namespace p3pdb::xml

#endif  // P3PDB_XML_NODE_H_
