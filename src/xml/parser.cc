#include "xml/parser.h"

#include <cstdio>

#include "common/string_util.h"

namespace p3pdb::xml {

namespace {

/// Cursor over the input with line/column tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    size_t i = pos_ + offset;
    return i < input_.size() ? input_[i] : '\0';
  }

  char Advance() {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  bool Consume(char c) {
    if (!AtEnd() && Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (input_.substr(pos_).substr(0, lit.size()) != lit) return false;
    for (size_t i = 0; i < lit.size(); ++i) Advance();
    return true;
  }

  bool LooksAt(std::string_view lit) const {
    return input_.substr(pos_).substr(0, lit.size()) == lit;
  }

  void SkipWhitespace() {
    while (!AtEnd() && IsAsciiSpace(Peek())) Advance();
  }

  Status Error(std::string_view what) const {
    char loc[48];
    std::snprintf(loc, sizeof(loc), " at %zu:%zu", line_, col_);
    return Status::ParseError(std::string(what) + loc);
  }

  size_t pos() const { return pos_; }
  std::string_view Slice(size_t from, size_t to) const {
    return input_.substr(from, to - from);
  }

 private:
  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
};

bool IsNameStartChar(char c) {
  return IsAsciiAlpha(c) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || IsAsciiDigit(c) || c == '-' || c == '.';
}

class Parser {
 public:
  explicit Parser(std::string_view input) : cur_(input) {}

  Result<Document> ParseDocument() {
    P3PDB_RETURN_IF_ERROR(SkipMisc());
    if (cur_.AtEnd() || cur_.Peek() != '<') {
      return cur_.Error("expected root element");
    }
    auto root = ParseElement();
    if (!root.ok()) return root.status();
    P3PDB_RETURN_IF_ERROR(SkipMisc());
    if (!cur_.AtEnd()) {
      return cur_.Error("trailing content after root element");
    }
    Document doc;
    doc.root = std::move(root).value();
    return doc;
  }

 private:
  /// Skips whitespace, comments, PIs, and DOCTYPE between markup.
  Status SkipMisc() {
    for (;;) {
      cur_.SkipWhitespace();
      if (cur_.LooksAt("<?")) {
        P3PDB_RETURN_IF_ERROR(SkipUntil("?>"));
      } else if (cur_.LooksAt("<!--")) {
        P3PDB_RETURN_IF_ERROR(SkipUntil("-->"));
      } else if (cur_.LooksAt("<!DOCTYPE")) {
        P3PDB_RETURN_IF_ERROR(SkipDoctype());
      } else {
        return Status::OK();
      }
    }
  }

  Status SkipUntil(std::string_view terminator) {
    while (!cur_.AtEnd()) {
      if (cur_.ConsumeLiteral(terminator)) return Status::OK();
      cur_.Advance();
    }
    return cur_.Error(std::string("unterminated construct, expected ") +
                      std::string(terminator));
  }

  Status SkipDoctype() {
    // Consume until the matching '>' at bracket depth zero; internal subsets
    // in [...] are skipped without expansion.
    int bracket_depth = 0;
    while (!cur_.AtEnd()) {
      char c = cur_.Advance();
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth <= 0) return Status::OK();
    }
    return cur_.Error("unterminated DOCTYPE");
  }

  Result<std::string> ParseName() {
    if (cur_.AtEnd() || !IsNameStartChar(cur_.Peek())) {
      return cur_.Error("expected name");
    }
    size_t start = cur_.pos();
    while (!cur_.AtEnd() && IsNameChar(cur_.Peek())) cur_.Advance();
    return std::string(cur_.Slice(start, cur_.pos()));
  }

  Result<std::string> ParseAttrValue() {
    char quote = cur_.Peek();
    if (quote != '"' && quote != '\'') {
      return cur_.Error("expected quoted attribute value");
    }
    cur_.Advance();
    size_t start = cur_.pos();
    while (!cur_.AtEnd() && cur_.Peek() != quote) {
      if (cur_.Peek() == '<') return cur_.Error("'<' in attribute value");
      cur_.Advance();
    }
    if (cur_.AtEnd()) return cur_.Error("unterminated attribute value");
    std::string_view raw = cur_.Slice(start, cur_.pos());
    cur_.Advance();  // closing quote
    return DecodeEntities(raw);
  }

  Result<std::unique_ptr<Element>> ParseElement() {
    if (!cur_.Consume('<')) return cur_.Error("expected '<'");
    P3PDB_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto elem = std::make_unique<Element>(std::move(name));

    // Attributes.
    for (;;) {
      cur_.SkipWhitespace();
      if (cur_.AtEnd()) return cur_.Error("unterminated start tag");
      char c = cur_.Peek();
      if (c == '>' || c == '/') break;
      P3PDB_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      cur_.SkipWhitespace();
      if (!cur_.Consume('=')) return cur_.Error("expected '=' in attribute");
      cur_.SkipWhitespace();
      P3PDB_ASSIGN_OR_RETURN(std::string value, ParseAttrValue());
      if (elem->HasAttr(attr_name)) {
        return cur_.Error("duplicate attribute '" + attr_name + "'");
      }
      elem->SetAttr(attr_name, value);
    }

    if (cur_.Consume('/')) {
      if (!cur_.Consume('>')) return cur_.Error("expected '>' after '/'");
      return elem;  // self-closing
    }
    if (!cur_.Consume('>')) return cur_.Error("expected '>'");

    // Content.
    for (;;) {
      if (cur_.AtEnd()) {
        return cur_.Error("unterminated element '" + elem->name() + "'");
      }
      if (cur_.LooksAt("</")) {
        cur_.ConsumeLiteral("</");
        P3PDB_ASSIGN_OR_RETURN(std::string end_name, ParseName());
        if (end_name != elem->name()) {
          return cur_.Error("mismatched end tag '" + end_name +
                            "', expected '" + elem->name() + "'");
        }
        cur_.SkipWhitespace();
        if (!cur_.Consume('>')) return cur_.Error("expected '>' in end tag");
        return elem;
      }
      if (cur_.LooksAt("<!--")) {
        P3PDB_RETURN_IF_ERROR(SkipUntil("-->"));
        continue;
      }
      if (cur_.LooksAt("<![CDATA[")) {
        cur_.ConsumeLiteral("<![CDATA[");
        size_t start = cur_.pos();
        for (;;) {
          if (cur_.AtEnd()) return cur_.Error("unterminated CDATA");
          if (cur_.LooksAt("]]>")) break;
          cur_.Advance();
        }
        elem->AppendText(cur_.Slice(start, cur_.pos()));
        cur_.ConsumeLiteral("]]>");
        continue;
      }
      if (cur_.LooksAt("<?")) {
        P3PDB_RETURN_IF_ERROR(SkipUntil("?>"));
        continue;
      }
      if (cur_.Peek() == '<') {
        auto child = ParseElement();
        if (!child.ok()) return child.status();
        elem->AddChild(std::move(child).value());
        continue;
      }
      // Character data up to the next '<'.
      size_t start = cur_.pos();
      while (!cur_.AtEnd() && cur_.Peek() != '<') cur_.Advance();
      P3PDB_ASSIGN_OR_RETURN(std::string text,
                             DecodeEntities(cur_.Slice(start, cur_.pos())));
      elem->AppendText(text);
    }
  }

  Cursor cur_;
};

}  // namespace

Result<Document> Parse(std::string_view input) {
  Parser parser(input);
  return parser.ParseDocument();
}

Result<std::string> DecodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out.push_back(s[i]);
      continue;
    }
    size_t semi = s.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view name = s.substr(i + 1, semi - i - 1);
    if (name == "lt") {
      out.push_back('<');
    } else if (name == "gt") {
      out.push_back('>');
    } else if (name == "amp") {
      out.push_back('&');
    } else if (name == "apos") {
      out.push_back('\'');
    } else if (name == "quot") {
      out.push_back('"');
    } else if (!name.empty() && name[0] == '#') {
      int base = 10;
      std::string_view digits = name.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) return Status::ParseError("empty character ref");
      unsigned long code = 0;
      for (char c : digits) {
        int d;
        if (IsAsciiDigit(c)) {
          d = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          d = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          d = c - 'A' + 10;
        } else {
          return Status::ParseError("bad character reference &" +
                                    std::string(name) + ";");
        }
        code = code * base + static_cast<unsigned long>(d);
        if (code > 0x10FFFF) {
          return Status::ParseError("character reference out of range");
        }
      }
      // UTF-8 encode.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      return Status::ParseError("unknown entity &" + std::string(name) + ";");
    }
    i = semi;
  }
  return out;
}

std::string EncodeEntities(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace p3pdb::xml
