// Recursive-descent XML parser producing the p3pdb DOM (see node.h).
//
// Supported: prolog (<?xml ...?>), processing instructions, comments,
// CDATA sections, DOCTYPE (skipped, internal subsets not expanded),
// single- and double-quoted attributes, self-closing tags, and the five
// predefined entities plus decimal/hex character references.
//
// Not supported (returns Status::Unsupported): external entity expansion.
// P3P documents do not use it, and skipping it avoids the XXE class of
// vulnerabilities by construction.

#ifndef P3PDB_XML_PARSER_H_
#define P3PDB_XML_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/node.h"

namespace p3pdb::xml {

/// Parses a complete XML document. Errors carry a line:column location.
Result<Document> Parse(std::string_view input);

/// Decodes XML entities (&amp; etc. and numeric references) in `s`.
/// Unknown entities fail with ParseError.
Result<std::string> DecodeEntities(std::string_view s);

/// Encodes the five special characters for use in text content or
/// double-quoted attribute values.
std::string EncodeEntities(std::string_view s);

}  // namespace p3pdb::xml

#endif  // P3PDB_XML_PARSER_H_
