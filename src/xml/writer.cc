#include "xml/writer.h"

#include "common/string_util.h"
#include "xml/parser.h"

namespace p3pdb::xml {

namespace {

void WriteElement(const Element& e, const WriteOptions& options, int depth,
                  std::string* out) {
  auto indent = [&](int d) {
    if (options.indent) {
      for (int i = 0; i < d * 2; ++i) out->push_back(' ');
    }
  };
  auto newline = [&] {
    if (options.indent) out->push_back('\n');
  };

  indent(depth);
  out->push_back('<');
  out->append(e.name());
  for (const Attribute& a : e.attributes()) {
    out->push_back(' ');
    out->append(a.name);
    out->append("=\"");
    out->append(EncodeEntities(a.value));
    out->push_back('"');
  }

  const bool has_text = !Trim(e.text()).empty();
  if (e.children().empty() && !has_text) {
    out->append("/>");
    newline();
    return;
  }

  out->push_back('>');
  if (has_text && e.children().empty()) {
    // Text-only element stays on one line.
    out->append(EncodeEntities(Trim(e.text())));
  } else {
    newline();
    if (has_text) {
      indent(depth + 1);
      out->append(EncodeEntities(Trim(e.text())));
      newline();
    }
    for (const auto& child : e.children()) {
      WriteElement(*child, options, depth + 1, out);
    }
    indent(depth);
  }
  out->append("</");
  out->append(e.name());
  out->push_back('>');
  newline();
}

}  // namespace

std::string Write(const Element& root, const WriteOptions& options) {
  std::string out;
  if (options.prolog) {
    out.append("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
    if (options.indent) out.push_back('\n');
  }
  WriteElement(root, options, 0, &out);
  return out;
}

}  // namespace p3pdb::xml
