// XML serializer: turns a DOM subtree back into text.
//
// Used by the policy/preference writers, the workload generator (to measure
// document sizes as the paper reports them, in KB of XML text), and golden
// round-trip tests.

#ifndef P3PDB_XML_WRITER_H_
#define P3PDB_XML_WRITER_H_

#include <string>

#include "xml/node.h"

namespace p3pdb::xml {

struct WriteOptions {
  /// Pretty-print with two-space indentation. When false, emits a compact
  /// single-line form.
  bool indent = true;
  /// Emit the <?xml version="1.0"?> prolog before the root element.
  bool prolog = true;
};

/// Serializes `root` (and its subtree) to XML text.
std::string Write(const Element& root, const WriteOptions& options = {});

}  // namespace p3pdb::xml

#endif  // P3PDB_XML_WRITER_H_
