#include "xquery/ast.h"

namespace p3pdb::xquery {

std::string Cond::ToString() const {
  switch (kind) {
    case CondKind::kOr:
    case CondKind::kAnd: {
      std::string out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += kind == CondKind::kOr ? " or " : " and ";
        out += children[i].ToString();
      }
      out += ")";
      return out;
    }
    case CondKind::kNot:
      return "not(" + children[0].ToString() + ")";
    case CondKind::kAttrEquals:
      return "@" + attr_name + " = \"" + attr_value + "\"";
    case CondKind::kPathExists:
      return step->ToString();
  }
  return "?";
}

std::string Step::ToString() const {
  std::string out = name;
  for (const Cond& pred : predicates) {
    out += "[";
    out += pred.ToString();
    out += "]";
  }
  return out;
}

std::string Query::ToString() const {
  std::string out = "if (document(\"";
  out += document_arg;
  out += "\")";
  for (const Cond& cond : conditions) {
    out += "[";
    out += cond.ToString();
    out += "]";
  }
  out += ") then <";
  out += behavior;
  out += "/> else ()";
  return out;
}

}  // namespace p3pdb::xquery
