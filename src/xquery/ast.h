// AST for the XQuery subset the APPEL translator of the paper's Figure 17
// emits: `if (document("applicable-policy")[COND...]) then <behavior/>`.
//
// Conditions are XPath-style predicates: child-path existence tests with
// nested predicates, attribute equality tests, and or/and/not combinations
// (Figure 18 shows the shape).

#ifndef P3PDB_XQUERY_AST_H_
#define P3PDB_XQUERY_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace p3pdb::xquery {

enum class CondKind {
  kOr,          // children
  kAnd,         // children
  kNot,         // children[0]
  kAttrEquals,  // attr_name = attr_value
  kPathExists,  // step (a child element with predicates)
};

struct Step;

struct Cond {
  CondKind kind = CondKind::kAnd;
  std::vector<Cond> children;         // kOr / kAnd / kNot
  std::string attr_name;              // kAttrEquals
  std::string attr_value;             // kAttrEquals
  std::unique_ptr<Step> step;         // kPathExists

  Cond() = default;
  Cond(Cond&&) = default;
  Cond& operator=(Cond&&) = default;
  Cond(const Cond&) = delete;
  Cond& operator=(const Cond&) = delete;

  /// Renders back to XQuery text (parenthesized).
  std::string ToString() const;
};

/// One location step: an element name with zero or more [predicates].
struct Step {
  std::string name;
  std::vector<Cond> predicates;

  std::string ToString() const;
};

/// The full `if (document(...)[conds]) then <behavior/> else ()` query.
struct Query {
  std::string document_arg;     // e.g. "applicable-policy"
  std::vector<Cond> conditions; // predicates applied to the document node
  std::string behavior;         // element name in the then-branch

  std::string ToString() const;
};

}  // namespace p3pdb::xquery

#endif  // P3PDB_XQUERY_AST_H_
