#include "xquery/eval.h"

#include "p3p/data_schema.h"

namespace p3pdb::xquery {

namespace {

bool StepMatches(const Step& step, const xml::Element& elem) {
  if (elem.LocalName() != step.name) return false;
  for (const Cond& pred : step.predicates) {
    if (!EvalCond(pred, elem)) return false;
  }
  return true;
}

}  // namespace

bool EvalCond(const Cond& cond, const xml::Element& context) {
  switch (cond.kind) {
    case CondKind::kOr:
      for (const Cond& child : cond.children) {
        if (EvalCond(child, context)) return true;
      }
      return false;
    case CondKind::kAnd:
      for (const Cond& child : cond.children) {
        if (!EvalCond(child, context)) return false;
      }
      return true;
    case CondKind::kNot:
      return !EvalCond(cond.children[0], context);
    case CondKind::kAttrEquals: {
      std::optional<std::string_view> v = context.Attr(cond.attr_name);
      // Vocabulary defaults mirror the APPEL engine's treatment: an absent
      // required/optional attribute matches its default value.
      if (!v.has_value()) {
        if (cond.attr_name == "required") return cond.attr_value == "always";
        if (cond.attr_name == "optional") return cond.attr_value == "no";
        return false;
      }
      if (cond.attr_name == "ref") {
        return p3p::NormalizeDataRef(*v) ==
               p3p::NormalizeDataRef(cond.attr_value);
      }
      return *v == cond.attr_value;
    }
    case CondKind::kPathExists:
      for (const auto& child : context.children()) {
        if (StepMatches(*cond.step, *child)) return true;
      }
      return false;
  }
  return false;
}

namespace {

/// Evaluates a condition with the *document node* as context: its only
/// child is the root element and it carries no attributes, so a
/// kPathExists condition on the document tests the root element itself.
struct DocumentEval {
  const xml::Element& root;

  bool Eval(const Cond& c) const {
    switch (c.kind) {
      case CondKind::kOr:
        for (const Cond& ch : c.children) {
          if (Eval(ch)) return true;
        }
        return false;
      case CondKind::kAnd:
        for (const Cond& ch : c.children) {
          if (!Eval(ch)) return false;
        }
        return true;
      case CondKind::kNot:
        return !Eval(c.children[0]);
      case CondKind::kAttrEquals:
        return false;  // the document node has no attributes
      case CondKind::kPathExists:
        return c.step->name == root.LocalName() &&
               StepMatches(*c.step, root);
    }
    return false;
  }
};

}  // namespace

Result<bool> EvalQuery(const Query& query, const xml::Element& document_root) {
  DocumentEval doc{document_root};
  for (const Cond& cond : query.conditions) {
    if (!doc.Eval(cond)) return false;
  }
  return true;
}

}  // namespace p3pdb::xquery
