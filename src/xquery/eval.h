// Direct evaluation of the XQuery subset over the XML DOM — the "native
// XML store" variation of the paper's §4 (variation 3): the policy lives as
// an XML document and the XQuery runs against it without a relational
// detour.

#ifndef P3PDB_XQUERY_EVAL_H_
#define P3PDB_XQUERY_EVAL_H_

#include "common/result.h"
#include "xml/node.h"
#include "xquery/ast.h"

namespace p3pdb::xquery {

/// Evaluates the query's condition with `document_root` bound to
/// document("..."). Returns whether the then-branch (the behavior element)
/// would be produced.
Result<bool> EvalQuery(const Query& query, const xml::Element& document_root);

/// Evaluates one condition with `context` as the context element.
bool EvalCond(const Cond& cond, const xml::Element& context);

}  // namespace p3pdb::xquery

#endif  // P3PDB_XQUERY_EVAL_H_
