#include "xquery/parser.h"

#include "common/string_util.h"

namespace p3pdb::xquery {

namespace {

bool IsNameChar(char c) {
  return IsAsciiAlpha(c) || IsAsciiDigit(c) || c == '-' || c == '_' ||
         c == '.' || c == ':';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Query> Parse() {
    Query query;
    P3PDB_RETURN_IF_ERROR(ExpectWord("if"));
    P3PDB_RETURN_IF_ERROR(Expect('('));
    P3PDB_RETURN_IF_ERROR(ExpectWord("document"));
    P3PDB_RETURN_IF_ERROR(Expect('('));
    P3PDB_ASSIGN_OR_RETURN(query.document_arg, ParseString());
    P3PDB_RETURN_IF_ERROR(Expect(')'));
    Skip();
    while (Peek() == '[') {
      Advance();
      P3PDB_ASSIGN_OR_RETURN(Cond cond, ParseOr());
      query.conditions.push_back(std::move(cond));
      P3PDB_RETURN_IF_ERROR(Expect(']'));
      Skip();
    }
    P3PDB_RETURN_IF_ERROR(Expect(')'));
    P3PDB_RETURN_IF_ERROR(ExpectWord("then"));
    Skip();
    P3PDB_RETURN_IF_ERROR(Expect('<'));
    P3PDB_ASSIGN_OR_RETURN(query.behavior, ParseName());
    P3PDB_RETURN_IF_ERROR(Expect('/'));
    P3PDB_RETURN_IF_ERROR(Expect('>'));
    Skip();
    // Optional `else ()`.
    if (!AtEnd() && PeekWord("else")) {
      P3PDB_RETURN_IF_ERROR(ExpectWord("else"));
      P3PDB_RETURN_IF_ERROR(Expect('('));
      P3PDB_RETURN_IF_ERROR(Expect(')'));
    }
    Skip();
    if (!AtEnd()) return Error("trailing input");
    return query;
  }

 private:
  void Skip() {
    while (pos_ < text_.size() && IsAsciiSpace(text_[pos_])) ++pos_;
  }
  bool AtEnd() {
    Skip();
    return pos_ >= text_.size();
  }
  char Peek() {
    Skip();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void Advance() { ++pos_; }

  bool PeekWord(std::string_view word) {
    Skip();
    if (text_.substr(pos_).substr(0, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    return after >= text_.size() || !IsNameChar(text_[after]);
  }

  Status ExpectWord(std::string_view word) {
    if (!PeekWord(word)) {
      return Error("expected '" + std::string(word) + "'");
    }
    pos_ += word.size();
    return Status::OK();
  }

  Status Expect(char c) {
    if (Peek() != c) return Error(std::string("expected '") + c + "'");
    Advance();
    return Status::OK();
  }

  Status Error(std::string msg) const {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_) +
                              " in XQuery");
  }

  Result<std::string> ParseString() {
    if (Peek() != '"') return Error("expected string literal");
    Advance();
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      out.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) return Error("unterminated string");
    Advance();
    return out;
  }

  Result<std::string> ParseName() {
    Skip();
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    if (pos_ == start) return Error("expected name");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<Cond> ParseOr() {
    P3PDB_ASSIGN_OR_RETURN(Cond first, ParseAnd());
    if (!PeekWord("or")) return first;
    Cond cond;
    cond.kind = CondKind::kOr;
    cond.children.push_back(std::move(first));
    while (PeekWord("or")) {
      P3PDB_RETURN_IF_ERROR(ExpectWord("or"));
      P3PDB_ASSIGN_OR_RETURN(Cond next, ParseAnd());
      cond.children.push_back(std::move(next));
    }
    return cond;
  }

  Result<Cond> ParseAnd() {
    P3PDB_ASSIGN_OR_RETURN(Cond first, ParsePrimary());
    if (!PeekWord("and")) return first;
    Cond cond;
    cond.kind = CondKind::kAnd;
    cond.children.push_back(std::move(first));
    while (PeekWord("and")) {
      P3PDB_RETURN_IF_ERROR(ExpectWord("and"));
      P3PDB_ASSIGN_OR_RETURN(Cond next, ParsePrimary());
      cond.children.push_back(std::move(next));
    }
    return cond;
  }

  Result<Cond> ParsePrimary() {
    Skip();
    if (PeekWord("not")) {
      P3PDB_RETURN_IF_ERROR(ExpectWord("not"));
      P3PDB_RETURN_IF_ERROR(Expect('('));
      P3PDB_ASSIGN_OR_RETURN(Cond inner, ParseOr());
      P3PDB_RETURN_IF_ERROR(Expect(')'));
      Cond cond;
      cond.kind = CondKind::kNot;
      cond.children.push_back(std::move(inner));
      return cond;
    }
    if (Peek() == '(') {
      Advance();
      P3PDB_ASSIGN_OR_RETURN(Cond inner, ParseOr());
      P3PDB_RETURN_IF_ERROR(Expect(')'));
      return inner;
    }
    if (Peek() == '@') {
      Advance();
      Cond cond;
      cond.kind = CondKind::kAttrEquals;
      P3PDB_ASSIGN_OR_RETURN(cond.attr_name, ParseName());
      Skip();
      P3PDB_RETURN_IF_ERROR(Expect('='));
      P3PDB_ASSIGN_OR_RETURN(cond.attr_value, ParseString());
      return cond;
    }
    // A relative child step with optional predicates.
    Cond cond;
    cond.kind = CondKind::kPathExists;
    cond.step = std::make_unique<Step>();
    P3PDB_ASSIGN_OR_RETURN(cond.step->name, ParseName());
    Skip();
    while (Peek() == '[') {
      Advance();
      P3PDB_ASSIGN_OR_RETURN(Cond pred, ParseOr());
      cond.step->predicates.push_back(std::move(pred));
      P3PDB_RETURN_IF_ERROR(Expect(']'));
      Skip();
    }
    return cond;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace p3pdb::xquery
