// Parser for the XQuery subset of Figure 17/18 (see ast.h).

#ifndef P3PDB_XQUERY_PARSER_H_
#define P3PDB_XQUERY_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "xquery/ast.h"

namespace p3pdb::xquery {

/// Parses `if (document("...")[cond]...) then <name/> [else ()]`.
Result<Query> ParseQuery(std::string_view text);

}  // namespace p3pdb::xquery

#endif  // P3PDB_XQUERY_PARSER_H_
