#include "xquery/translate_appel.h"

#include "p3p/data_schema.h"

namespace p3pdb::xquery {

using appel::AppelExpr;
using appel::AppelRule;
using appel::AppelRuleset;
using appel::Connective;

namespace {

Result<Cond> CombineXq(std::vector<Cond> terms, Connective connective) {
  auto junction = [&](CondKind kind) {
    if (terms.size() == 1) return std::move(terms[0]);
    Cond cond;
    cond.kind = kind;
    cond.children = std::move(terms);
    return cond;
  };
  switch (connective) {
    case Connective::kAnd:
      return junction(CondKind::kAnd);
    case Connective::kOr:
      return junction(CondKind::kOr);
    case Connective::kNonAnd: {
      Cond cond;
      cond.kind = CondKind::kNot;
      cond.children.push_back(junction(CondKind::kAnd));
      return cond;
    }
    case Connective::kNonOr: {
      Cond cond;
      cond.kind = CondKind::kNot;
      cond.children.push_back(junction(CondKind::kOr));
      return cond;
    }
    case Connective::kAndExact:
    case Connective::kOrExact:
      return Status::Unsupported(
          "exact connectives are not expressible in the XPath subset");
  }
  return Status::Internal("unhandled connective");
}

/// Figure 17's match(): e.name()[ attrs and (subexpressions) ].
Result<Cond> Match(const AppelExpr& expr) {
  Cond cond;
  cond.kind = CondKind::kPathExists;
  cond.step = std::make_unique<Step>();
  cond.step->name = expr.name;

  std::vector<Cond> preds;
  for (const appel::AppelAttribute& attr : expr.attributes) {
    Cond test;
    test.kind = CondKind::kAttrEquals;
    test.attr_name = attr.name;
    test.attr_value = attr.name == "ref"
                          ? std::string(p3p::NormalizeDataRef(attr.value))
                          : attr.value;
    if (attr.name == "ref") test.attr_value = "#" + test.attr_value;
    preds.push_back(std::move(test));
  }
  if (!expr.children.empty()) {
    std::vector<Cond> child_terms;
    for (const AppelExpr& child : expr.children) {
      P3PDB_ASSIGN_OR_RETURN(Cond sub, Match(child));
      child_terms.push_back(std::move(sub));
    }
    P3PDB_ASSIGN_OR_RETURN(
        Cond combined, CombineXq(std::move(child_terms), expr.connective));
    preds.push_back(std::move(combined));
  }
  if (preds.size() == 1) {
    cond.step->predicates.push_back(std::move(preds[0]));
  } else if (preds.size() > 1) {
    Cond all;
    all.kind = CondKind::kAnd;
    all.children = std::move(preds);
    cond.step->predicates.push_back(std::move(all));
  }
  return cond;
}

}  // namespace

Result<Query> AppelToXQueryTranslator::TranslateRuleToAst(
    const AppelRule& rule) const {
  Query query;
  query.document_arg = "applicable-policy";
  query.behavior = rule.behavior;
  if (rule.IsCatchAll()) return query;

  std::vector<Cond> terms;
  for (const AppelExpr& expr : rule.expressions) {
    P3PDB_ASSIGN_OR_RETURN(Cond cond, Match(expr));
    terms.push_back(std::move(cond));
  }
  P3PDB_ASSIGN_OR_RETURN(Cond combined,
                         CombineXq(std::move(terms), rule.connective));
  query.conditions.push_back(std::move(combined));
  return query;
}

Result<std::string> AppelToXQueryTranslator::TranslateRule(
    const AppelRule& rule) const {
  P3PDB_ASSIGN_OR_RETURN(Query query, TranslateRuleToAst(rule));
  return query.ToString();
}

Result<XQueryRuleset> AppelToXQueryTranslator::TranslateRuleset(
    const AppelRuleset& rs) const {
  XQueryRuleset out;
  for (const AppelRule& rule : rs.rules) {
    P3PDB_ASSIGN_OR_RETURN(std::string text, TranslateRule(rule));
    out.rule_queries.push_back(std::move(text));
    out.behaviors.push_back(rule.behavior);
  }
  return out;
}

}  // namespace p3pdb::xquery
