// APPEL -> XQuery translation — the algorithm of the paper's Figure 17.
//
// Each rule becomes `if (document("applicable-policy")[<pattern>]) then
// <behavior/> else ()` (Figure 18 shows the translation of Jane's first
// rule). Connectives map to XPath `or` / `and`; the negated connectives use
// `not(...)`; the *-exact connectives are not expressible in this XPath
// subset and report Unsupported — the same boundary the paper's tech report
// draws for its XQuery path.

#ifndef P3PDB_XQUERY_TRANSLATE_APPEL_H_
#define P3PDB_XQUERY_TRANSLATE_APPEL_H_

#include <string>
#include <vector>

#include "appel/model.h"
#include "common/result.h"
#include "xquery/ast.h"

namespace p3pdb::xquery {

/// A ruleset compiled to XQuery: one query per rule, evaluated in order;
/// the first query whose condition holds yields its behavior.
struct XQueryRuleset {
  std::vector<std::string> rule_queries;
  std::vector<std::string> behaviors;
};

class AppelToXQueryTranslator {
 public:
  /// Figure 17's main(): translates one rule to XQuery text.
  Result<std::string> TranslateRule(const appel::AppelRule& rule) const;

  /// Structured form (the AST the text parses back to).
  Result<Query> TranslateRuleToAst(const appel::AppelRule& rule) const;

  Result<XQueryRuleset> TranslateRuleset(const appel::AppelRuleset& rs) const;
};

}  // namespace p3pdb::xquery

#endif  // P3PDB_XQUERY_TRANSLATE_APPEL_H_
