#include "xquery/xtable.h"

#include "common/string_util.h"
#include "p3p/data_schema.h"
#include "shredder/element_spec.h"
#include "translator/applicable_policy.h"

namespace p3pdb::xquery {

using shredder::AttributeSpec;
using shredder::ElementSpec;

namespace {

Result<std::string> CondToSql(const Cond& cond, const ElementSpec& spec,
                              const std::vector<std::string>& own_pk);

Result<std::string> StepToSql(const Step& step, const ElementSpec& parent,
                              const std::vector<std::string>& parent_pk) {
  const ElementSpec* spec = parent.FindChild(step.name);
  if (spec == nullptr) {
    return Status::Unsupported("no table for element '" + step.name +
                               "' under '" + parent.element_name() + "'");
  }
  std::vector<std::string> own_pk;
  own_pk.push_back(spec->id_column());
  own_pk.insert(own_pk.end(), parent_pk.begin(), parent_pk.end());

  std::string sql = "SELECT * FROM " + spec->table_name() + " WHERE ";
  std::vector<std::string> join_terms;
  for (const std::string& col : parent_pk) {
    join_terms.push_back(spec->table_name() + "." + col + " = " +
                         parent.table_name() + "." + col);
  }
  sql += Join(join_terms, " AND ");
  for (const Cond& pred : step.predicates) {
    P3PDB_ASSIGN_OR_RETURN(std::string cond_sql,
                           CondToSql(pred, *spec, own_pk));
    sql += " AND (" + cond_sql + ")";
  }
  return "EXISTS (" + sql + ")";
}

Result<std::string> CondToSql(const Cond& cond, const ElementSpec& spec,
                              const std::vector<std::string>& own_pk) {
  switch (cond.kind) {
    case CondKind::kOr:
    case CondKind::kAnd: {
      std::string out;
      for (size_t i = 0; i < cond.children.size(); ++i) {
        if (i > 0) out += cond.kind == CondKind::kOr ? " OR " : " AND ";
        P3PDB_ASSIGN_OR_RETURN(std::string sub,
                               CondToSql(cond.children[i], spec, own_pk));
        out += "(" + sub + ")";
      }
      return out;
    }
    case CondKind::kNot: {
      P3PDB_ASSIGN_OR_RETURN(std::string sub,
                             CondToSql(cond.children[0], spec, own_pk));
      return "NOT (" + sub + ")";
    }
    case CondKind::kAttrEquals: {
      for (const AttributeSpec& a : spec.attributes()) {
        if (a.name == cond.attr_name) {
          std::string value = cond.attr_value;
          if (a.name == "ref") {
            value = std::string(p3p::NormalizeDataRef(value));
          }
          return spec.table_name() + "." + a.column + " = " + SqlQuote(value);
        }
      }
      return Status::Unsupported("attribute '" + cond.attr_name +
                                 "' is not stored for element '" +
                                 spec.element_name() + "'");
    }
    case CondKind::kPathExists:
      return StepToSql(*cond.step, spec, own_pk);
  }
  return Status::Internal("unhandled condition kind");
}

/// A condition evaluated with the *document node* as context (the
/// predicates on document("applicable-policy")): POLICY path tests become
/// EXISTS over the Policy table; or/and/not recurse (rule-level
/// connectives land here); attribute tests on the document node are
/// vacuously false.
Result<std::string> DocCondToSql(const Cond& cond) {
  switch (cond.kind) {
    case CondKind::kPathExists: {
      if (cond.step->name != "POLICY") {
        return Status::Unsupported(
            "document-level path tests must target POLICY, got '" +
            cond.step->name + "'");
      }
      const ElementSpec& policy_spec = shredder::PolicyElementSpec();
      std::vector<std::string> own_pk = {"policy_id"};
      std::string sub =
          std::string("SELECT * FROM Policy WHERE Policy.policy_id = ") +
          translator::kApplicablePolicyTable + ".policy_id";
      for (const Cond& pred : cond.step->predicates) {
        P3PDB_ASSIGN_OR_RETURN(std::string cond_sql,
                               CondToSql(pred, policy_spec, own_pk));
        sub += " AND (" + cond_sql + ")";
      }
      return "EXISTS (" + sub + ")";
    }
    case CondKind::kOr:
    case CondKind::kAnd: {
      std::string out;
      for (size_t i = 0; i < cond.children.size(); ++i) {
        if (i > 0) out += cond.kind == CondKind::kOr ? " OR " : " AND ";
        P3PDB_ASSIGN_OR_RETURN(std::string sub,
                               DocCondToSql(cond.children[i]));
        out += "(" + sub + ")";
      }
      return out;
    }
    case CondKind::kNot: {
      P3PDB_ASSIGN_OR_RETURN(std::string sub,
                             DocCondToSql(cond.children[0]));
      return "NOT (" + sub + ")";
    }
    case CondKind::kAttrEquals:
      return std::string("(1 = 0)");  // the document node has no attributes
  }
  return Status::Internal("unhandled condition kind");
}

}  // namespace

Result<std::string> XTableTranslator::TranslateQuery(
    const Query& query) const {
  std::string sql = "SELECT " + SqlQuote(query.behavior) + " FROM " +
                    translator::kApplicablePolicyTable;
  if (query.conditions.empty()) return sql;

  std::vector<std::string> terms;
  for (const Cond& cond : query.conditions) {
    P3PDB_ASSIGN_OR_RETURN(std::string term, DocCondToSql(cond));
    terms.push_back("(" + term + ")");
  }
  sql += " WHERE " + Join(terms, " AND ");
  return sql;
}

}  // namespace p3pdb::xquery
