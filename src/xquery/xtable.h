// XTABLE-style XQuery -> SQL translation (the paper's §4 variation 2 and
// the "XQuery" column of Figures 20-21).
//
// XTABLE (a.k.a. XPERANTO) accepted an XQuery over an XML view of
// relational data and generated SQL against the underlying tables. Here the
// underlying tables are the simple (Figure 8) schema — the uniform
// one-table-per-element decomposition a generic view-definition tool would
// produce — and the generated SQL carries one EXISTS subquery per XPath
// step and per vocabulary element, without the value-merging optimization
// the hand-written Figure 15 translator applies. This is what makes the
// XQuery path slower than the direct SQL path (the "untapped optimizations"
// the paper observes), and, with a bounded statement complexity budget,
// what makes the deeply nested Medium preference untranslatable (the empty
// Figure 21 cell).

#ifndef P3PDB_XQUERY_XTABLE_H_
#define P3PDB_XQUERY_XTABLE_H_

#include <string>

#include "common/result.h"
#include "xquery/ast.h"

namespace p3pdb::xquery {

class XTableTranslator {
 public:
  /// Translates one rule's XQuery into SQL against the simple schema plus
  /// the materialized ApplicablePolicy table.
  Result<std::string> TranslateQuery(const Query& query) const;
};

}  // namespace p3pdb::xquery

#endif  // P3PDB_XQUERY_XTABLE_H_
