// Admin-endpoint lifecycle tests: bind/serve/shutdown on an ephemeral
// port, every route's status and content type, query parsing, 404/405
// handling, and concurrent scrapes while matches run (exercised under TSan
// in CI).

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "server/admin_http.h"
#include "server/policy_server.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::server {
namespace {

/// One blocking HTTP GET against localhost:port; returns the raw response
/// (head + body), empty on connect failure.
std::string HttpGet(uint16_t port, const std::string& target) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

std::unique_ptr<PolicyServer> MakeAdminServer(
    uint64_t slow_threshold_us = 0) {
  PolicyServer::Options options;
  options.engine = EngineKind::kSql;
  options.enable_admin_endpoint = true;
  options.admin_port = 0;  // ephemeral
  options.slow_query_threshold_us = slow_threshold_us;
  auto server = PolicyServer::Create(options);
  EXPECT_TRUE(server.ok()) << server.status().message();
  return std::move(server).value();
}

/// Installs a few policies and runs matches so the telemetry has content.
void WarmUp(PolicyServer* server, int matches = 5) {
  workload::CorpusOptions corpus_options;
  corpus_options.policy_count = 3;
  for (const auto& policy : workload::FortuneCorpus(corpus_options)) {
    ASSERT_TRUE(server->InstallPolicy(policy).ok());
  }
  auto pref = server->CompilePreference(
      workload::JrcPreference(workload::PreferenceLevel::kMedium));
  ASSERT_TRUE(pref.ok());
  for (int i = 0; i < matches; ++i) {
    for (int64_t id : server->policy_ids()) {
      ASSERT_TRUE(server->MatchPolicyId(pref.value(), id).ok());
    }
  }
}

TEST(AdminHttpTest, DisabledByDefault) {
  PolicyServer::Options options;
  auto server = PolicyServer::Create(options);
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(server.value()->admin_endpoint_running());
  EXPECT_EQ(server.value()->admin_port(), 0);
}

TEST(AdminHttpTest, BindsEphemeralPortAndServesHealthz) {
  auto server = MakeAdminServer();
  ASSERT_TRUE(server->admin_endpoint_running());
  ASSERT_NE(server->admin_port(), 0);
  std::string response = HttpGet(server->admin_port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  // The probe reports catalog state, not a bare ok: epoch, policy count,
  // and one entry-count object per match-cache shard.
  const std::string body = Body(response);
  EXPECT_NE(body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(body.find("\"catalog_epoch\":"), std::string::npos);
  EXPECT_NE(body.find("\"policies\":"), std::string::npos);
  EXPECT_NE(body.find("\"match_cache_shards\":["), std::string::npos);
  EXPECT_NE(body.find("{\"shard\":0,\"entries\":"), std::string::npos);
}

TEST(AdminHttpTest, MetricsRouteServesPrometheusText) {
  auto server = MakeAdminServer();
  WarmUp(server.get());
  std::string response = HttpGet(server->admin_port(), "/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = Body(response);
  EXPECT_NE(body.find("# TYPE p3p_matches_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("p3p_build_info{git_sha=\""), std::string::npos);
  EXPECT_NE(body.find("p3p_uptime_seconds"), std::string::npos);
  EXPECT_NE(body.find("p3p_match_duration_us_bucket{le=\""),
            std::string::npos);
}

TEST(AdminHttpTest, MetricsJsonRouteServesJson) {
  auto server = MakeAdminServer();
  WarmUp(server.get());
  std::string response = HttpGet(server->admin_port(), "/metrics.json");
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const std::string body = Body(response);
  EXPECT_NE(body.find("\"counters\""), std::string::npos);
  EXPECT_NE(body.find("\"p3p_matches_total\""), std::string::npos);
}

TEST(AdminHttpTest, StatementsRouteOrdersAndHonorsTop) {
  auto server = MakeAdminServer();
  WarmUp(server.get());
  const std::string body =
      Body(HttpGet(server->admin_port(), "/statements?top=5"));
  // The translated rule queries are parameterized SELECTs against the
  // optimized schema; at least one aggregate entry must be present with
  // its call count.
  EXPECT_NE(body.find("\"sql\": \"select"), std::string::npos);
  EXPECT_NE(body.find("\"calls\": "), std::string::npos);
  EXPECT_NE(body.find("\"p99_us\": "), std::string::npos);

  // top=1 returns at most one entry.
  const std::string top1 =
      Body(HttpGet(server->admin_port(), "/statements?top=1"));
  size_t entries = 0;
  for (size_t pos = 0;
       (pos = top1.find("\"fingerprint\"", pos)) != std::string::npos;
       ++pos) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST(AdminHttpTest, SlowRouteServesCapturedPlans) {
  auto server = MakeAdminServer(/*slow_threshold_us=*/1);
  WarmUp(server.get(), /*matches=*/2);
  const std::string body = Body(HttpGet(server->admin_port(), "/slow"));
  EXPECT_NE(body.find("\"kind\": \"slow\""), std::string::npos);
  EXPECT_NE(body.find("\"plan\": \""), std::string::npos);
  // /traces filters to samples only; with no sampling stride configured it
  // must be an empty array even though /slow has entries.
  const std::string traces = Body(HttpGet(server->admin_port(), "/traces"));
  EXPECT_EQ(traces.find("\"kind\": \"slow\""), std::string::npos);
}

TEST(AdminHttpTest, UnknownRouteIs404AndPostIs405) {
  auto server = MakeAdminServer();
  EXPECT_NE(HttpGet(server->admin_port(), "/nope").find("404 Not Found"),
            std::string::npos);
  // Hand-roll a POST.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->admin_port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("405 Method Not Allowed"), std::string::npos);
}

TEST(AdminHttpTest, ConcurrentScrapesDuringMatchesAreSafe) {
  auto server = MakeAdminServer();
  WarmUp(server.get(), /*matches=*/1);
  auto pref = server->CompilePreference(
      workload::JrcPreference(workload::PreferenceLevel::kMedium));
  ASSERT_TRUE(pref.ok());

  std::atomic<bool> stop{false};
  std::thread matcher([&] {
    while (!stop.load()) {
      for (int64_t id : server->policy_ids()) {
        (void)server->MatchPolicyId(pref.value(), id);
      }
    }
  });
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 3; ++t) {
    scrapers.emplace_back([&server] {
      for (int i = 0; i < 10; ++i) {
        EXPECT_NE(
            HttpGet(server->admin_port(), "/metrics").find("200 OK"),
            std::string::npos);
        EXPECT_NE(HttpGet(server->admin_port(), "/statements?top=3")
                      .find("200 OK"),
                  std::string::npos);
      }
    });
  }
  for (auto& s : scrapers) s.join();
  stop.store(true);
  matcher.join();
  EXPECT_GE(server->MetricsSnapshot().counters.at("p3p_matches_total"), 1u);
}

TEST(AdminHttpTest, ShutdownClosesTheListener) {
  uint16_t port = 0;
  {
    auto server = MakeAdminServer();
    port = server->admin_port();
    ASSERT_NE(HttpGet(port, "/healthz").find("200 OK"), std::string::npos);
  }
  // The destructor stopped the admin thread and closed the socket; a new
  // connection must now fail (empty response).
  EXPECT_EQ(HttpGet(port, "/healthz"), "");
}

}  // namespace
}  // namespace p3pdb::server
