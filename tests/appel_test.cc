// Tests for the APPEL model, parser, and native matching engine,
// including the six connective semantics of §2.2.

#include <gtest/gtest.h>

#include "appel/engine.h"
#include "appel/model.h"
#include "p3p/policy_xml.h"
#include "workload/paper_examples.h"
#include "xml/parser.h"

namespace p3pdb::appel {
namespace {

TEST(ConnectiveTest, ParseAll) {
  for (const char* name :
       {"and", "or", "non-and", "non-or", "and-exact", "or-exact"}) {
    auto c = ParseConnective(name);
    ASSERT_TRUE(c.ok()) << name;
    EXPECT_EQ(ConnectiveToString(c.value()), name);
  }
  EXPECT_FALSE(ParseConnective("xor").ok());
  EXPECT_FALSE(ParseConnective("").ok());
}

TEST(ModelTest, JaneShape) {
  AppelRuleset jane = workload::JanePreference();
  ASSERT_EQ(jane.RuleCount(), 3u);
  EXPECT_EQ(jane.rules[0].behavior, "block");
  EXPECT_EQ(jane.rules[1].behavior, "block");
  EXPECT_EQ(jane.rules[2].behavior, "request");
  EXPECT_TRUE(jane.rules[2].IsCatchAll());
  EXPECT_TRUE(jane.Validate().ok());
  // Rule 1's PURPOSE expression carries 12 value children (Figure 2).
  const AppelExpr& policy = jane.rules[0].expressions[0];
  const AppelExpr& purpose = policy.children[0].children[0];
  EXPECT_EQ(purpose.name, "PURPOSE");
  EXPECT_EQ(purpose.connective, Connective::kOr);
  EXPECT_EQ(purpose.children.size(), 12u);
}

TEST(ModelTest, ValidateRejectsMidCatchAll) {
  AppelRuleset rs = workload::JanePreference();
  std::swap(rs.rules[1], rs.rules[2]);  // catch-all before the last rule
  EXPECT_FALSE(rs.Validate().ok());
}

TEST(ModelTest, ValidateRejectsEmptyRuleset) {
  AppelRuleset rs;
  EXPECT_FALSE(rs.Validate().ok());
}

TEST(ModelTest, XmlRoundTrip) {
  AppelRuleset jane = workload::JanePreference();
  std::string text = RulesetToText(jane);
  auto parsed = RulesetFromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const AppelRuleset& rs = parsed.value();
  ASSERT_EQ(rs.RuleCount(), 3u);
  EXPECT_EQ(rs.ExpressionCount(), jane.ExpressionCount());
  EXPECT_EQ(RulesetToText(rs), text);  // fixed point
}

TEST(ModelTest, ParsesPaperFigureTwo) {
  const char* text = R"(<appel:RULESET
      xmlns:appel="http://www.w3.org/2002/04/APPELv1">
    <appel:RULE behavior="block">
      <POLICY>
        <STATEMENT>
          <PURPOSE appel:connective="or">
            <admin/><develop/><tailoring/>
            <pseudo-analysis/><pseudo-decision/>
            <individual-analysis/>
            <individual-decision required="always"/>
            <contact required="always"/>
            <historical/><telemarketing/>
            <other-purpose/><extension/>
          </PURPOSE>
        </STATEMENT>
      </POLICY>
    </appel:RULE>
    <appel:RULE behavior="block">
      <POLICY>
        <STATEMENT>
          <RECIPIENT appel:connective="or">
            <delivery/><other-recipient/>
            <unrelated/><public/><extension/>
          </RECIPIENT>
        </STATEMENT>
      </POLICY>
    </appel:RULE>
    <appel:RULE behavior="request"/>
  </appel:RULESET>)";
  auto parsed = RulesetFromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const AppelRuleset& rs = parsed.value();
  ASSERT_EQ(rs.RuleCount(), 3u);
  EXPECT_TRUE(rs.rules[2].IsCatchAll());
  const AppelExpr& purpose =
      rs.rules[0].expressions[0].children[0].children[0];
  EXPECT_EQ(purpose.connective, Connective::kOr);
  ASSERT_EQ(purpose.children.size(), 12u);
  EXPECT_EQ(purpose.children[6].name, "individual-decision");
  ASSERT_EQ(purpose.children[6].attributes.size(), 1u);
  EXPECT_EQ(purpose.children[6].attributes[0].value, "always");
}

TEST(ModelTest, RuleWithoutBehaviorFails) {
  EXPECT_FALSE(
      RulesetFromText("<appel:RULESET><appel:RULE/></appel:RULESET>").ok());
}

TEST(ModelTest, UnknownConnectiveFails) {
  EXPECT_FALSE(RulesetFromText("<appel:RULESET><appel:RULE behavior=\"b\">"
                               "<POLICY appel:connective=\"xor\"/>"
                               "</appel:RULE></appel:RULESET>")
                   .ok());
}

// ---- Connective semantics on hand-built evidence --------------------------

class ConnectiveSemanticsTest : public ::testing::Test {
 protected:
  /// Evidence: <PURPOSE><current/><contact required="opt-in"/></PURPOSE>
  ConnectiveSemanticsTest() : evidence_("PURPOSE") {
    evidence_.AddChild("current");
    evidence_.AddChild("contact")->SetAttr("required", "opt-in");
  }

  static AppelExpr Value(std::string name) {
    AppelExpr e;
    e.name = std::move(name);
    return e;
  }

  AppelExpr Group(Connective c, std::vector<std::string> names) {
    AppelExpr e;
    e.name = "PURPOSE";
    e.connective = c;
    for (std::string& n : names) e.children.push_back(Value(std::move(n)));
    return e;
  }

  bool Matches(const AppelExpr& expr) {
    return NativeEngine::ExprMatches(expr, evidence_);
  }

  xml::Element evidence_;
};

TEST_F(ConnectiveSemanticsTest, Or) {
  EXPECT_TRUE(Matches(Group(Connective::kOr, {"current", "telemarketing"})));
  EXPECT_FALSE(Matches(Group(Connective::kOr, {"admin", "telemarketing"})));
}

TEST_F(ConnectiveSemanticsTest, And) {
  EXPECT_TRUE(Matches(Group(Connective::kAnd, {"current", "contact"})));
  EXPECT_FALSE(Matches(Group(Connective::kAnd, {"current", "admin"})));
}

TEST_F(ConnectiveSemanticsTest, NonOr) {
  // Matches only when NONE of the listed values are present.
  EXPECT_TRUE(Matches(Group(Connective::kNonOr, {"admin", "develop"})));
  EXPECT_FALSE(Matches(Group(Connective::kNonOr, {"admin", "current"})));
}

TEST_F(ConnectiveSemanticsTest, NonAnd) {
  // Matches unless ALL listed values are present.
  EXPECT_TRUE(Matches(Group(Connective::kNonAnd, {"current", "admin"})));
  EXPECT_FALSE(Matches(Group(Connective::kNonAnd, {"current", "contact"})));
}

TEST_F(ConnectiveSemanticsTest, AndExact) {
  // (a) all listed found and (b) nothing unlisted present.
  EXPECT_TRUE(Matches(Group(Connective::kAndExact, {"current", "contact"})));
  EXPECT_FALSE(Matches(Group(Connective::kAndExact, {"current"})));
  EXPECT_FALSE(Matches(
      Group(Connective::kAndExact, {"current", "contact", "admin"})));
}

TEST_F(ConnectiveSemanticsTest, OrExact) {
  // (a) at least one listed found and (b) nothing unlisted present.
  EXPECT_TRUE(Matches(
      Group(Connective::kOrExact, {"current", "contact", "admin"})));
  EXPECT_FALSE(Matches(Group(Connective::kOrExact, {"current"})));
  EXPECT_FALSE(Matches(Group(Connective::kOrExact, {"admin", "develop"})));
}

TEST_F(ConnectiveSemanticsTest, RequiredAttributeDefaults) {
  // <current/> carries no required attribute: it matches required="always"
  // (the default) but not required="opt-in".
  AppelExpr always;
  always.name = "PURPOSE";
  AppelExpr v = Value("current");
  v.attributes.push_back(AppelAttribute{"required", "always"});
  always.children.push_back(std::move(v));
  EXPECT_TRUE(Matches(always));

  AppelExpr optin;
  optin.name = "PURPOSE";
  AppelExpr v2 = Value("current");
  v2.attributes.push_back(AppelAttribute{"required", "opt-in"});
  optin.children.push_back(std::move(v2));
  EXPECT_FALSE(Matches(optin));

  // And the evidence's explicit opt-in on contact is honored.
  AppelExpr contact;
  contact.name = "PURPOSE";
  AppelExpr v3 = Value("contact");
  v3.attributes.push_back(AppelAttribute{"required", "opt-in"});
  contact.children.push_back(std::move(v3));
  EXPECT_TRUE(Matches(contact));
}

// ---- Engine-level tests ----------------------------------------------------

TEST(NativeEngineTest, JaneVsVolga) {
  NativeEngine engine;
  std::unique_ptr<xml::Element> dom =
      p3p::PolicyToXml(workload::VolgaPolicy());
  auto outcome = engine.Evaluate(workload::JanePreference(), *dom);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome.value().behavior, "request");
  EXPECT_EQ(outcome.value().fired_rule_index, 2);
}

TEST(NativeEngineTest, DefaultBlockWhenNoRuleFires) {
  AppelRuleset rs;
  AppelRule rule;
  rule.behavior = "request";
  AppelExpr policy;
  policy.name = "POLICY";
  AppelExpr statement;
  statement.name = "STATEMENT";
  AppelExpr purpose;
  purpose.name = "PURPOSE";
  purpose.children.push_back([] {
    AppelExpr e;
    e.name = "telemarketing";
    return e;
  }());
  statement.children.push_back(std::move(purpose));
  policy.children.push_back(std::move(statement));
  rule.expressions.push_back(std::move(policy));
  rs.rules.push_back(std::move(rule));

  NativeEngine engine;
  std::unique_ptr<xml::Element> dom =
      p3p::PolicyToXml(workload::VolgaPolicy());
  auto outcome = engine.Evaluate(rs, *dom);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome.value().fired());
  EXPECT_EQ(outcome.value().behavior, kDefaultBehavior);
}

TEST(NativeEngineTest, CategoryMatchingNeedsAugmentation) {
  // A rule blocking physical data. Volga collects user.name (physical per
  // the base schema) but writes no CATEGORIES for it; only an augmenting
  // engine sees the implied category.
  AppelRuleset rs;
  AppelRule rule;
  rule.behavior = "block";
  AppelExpr categories;
  categories.name = "CATEGORIES";
  categories.connective = Connective::kOr;
  AppelExpr physical;
  physical.name = "physical";
  categories.children.push_back(std::move(physical));
  AppelExpr data;
  data.name = "DATA";
  data.children.push_back(std::move(categories));
  AppelExpr group;
  group.name = "DATA-GROUP";
  group.children.push_back(std::move(data));
  AppelExpr statement;
  statement.name = "STATEMENT";
  statement.children.push_back(std::move(group));
  AppelExpr policy;
  policy.name = "POLICY";
  policy.children.push_back(std::move(statement));
  rule.expressions.push_back(std::move(policy));
  rs.rules.push_back(std::move(rule));

  std::unique_ptr<xml::Element> dom =
      p3p::PolicyToXml(workload::VolgaPolicy());

  NativeEngine augmenting(NativeEngine::Options{.augment_per_match = true});
  auto with = augmenting.Evaluate(rs, *dom);
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(with.value().behavior, "block");

  NativeEngine raw(NativeEngine::Options{.augment_per_match = false});
  auto without = raw.Evaluate(rs, *dom);
  ASSERT_TRUE(without.ok());
  EXPECT_FALSE(without.value().fired());
}

TEST(NativeEngineTest, RejectsNonPolicyEvidence) {
  NativeEngine engine;
  xml::Element not_policy("RULESET");
  auto outcome = engine.Evaluate(workload::JanePreference(), not_policy);
  EXPECT_FALSE(outcome.ok());
}

TEST(NativeEngineTest, RuleOrderDecides) {
  // Two rules that both fire: the first wins.
  AppelRuleset rs;
  AppelRule first;
  first.behavior = "limited";
  rs.rules.push_back(std::move(first));
  AppelRule second;
  second.behavior = "request";
  rs.rules.push_back(std::move(second));

  NativeEngine engine;
  std::unique_ptr<xml::Element> dom =
      p3p::PolicyToXml(workload::VolgaPolicy());
  auto outcome = engine.Evaluate(rs, *dom);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().behavior, "limited");
  EXPECT_EQ(outcome.value().fired_rule_index, 0);
}

}  // namespace
}  // namespace p3pdb::appel
