// Tests for the common substrate: Status/Result, string utilities, RNG.

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace p3pdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(StatusTest, EveryCodeHasAName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kLimitExceeded), "LimitExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  P3PDB_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 21);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_FALSE(Doubled(0).ok());
  Result<int> r = Doubled(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 10);
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \n\t"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  std::vector<std::string> parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, ToLowerAsciiOnly) {
  EXPECT_EQ(ToLower("AbC-12_Z"), "abc-12_z");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "SELEC"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a*b*c", "*", "%"), "a%b%c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "x", "y"), "abc");
}

TEST(StringUtilTest, SqlQuoteDoublesQuotes) {
  EXPECT_EQ(SqlQuote("it's"), "'it''s'");
  EXPECT_EQ(SqlQuote(""), "''");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

TEST(RandomTest, Deterministic) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, UniformIntInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RandomTest, UniformDoubleInUnitInterval) {
  Random rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ChoicePicksMembers) {
  Random rng(99);
  std::vector<int> items = {1, 2, 3};
  for (int i = 0; i < 100; ++i) {
    int v = rng.Choice(items);
    EXPECT_TRUE(v == 1 || v == 2 || v == 3);
  }
}

TEST(TimingStatsTest, AvgMaxMin) {
  TimingStats stats;
  stats.Add(1.0);
  stats.Add(3.0);
  stats.Add(2.0);
  EXPECT_DOUBLE_EQ(stats.Average(), 2.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 1.0);
  EXPECT_EQ(stats.count(), 3u);
}

TEST(TimingStatsTest, EmptyIsZero) {
  TimingStats stats;
  EXPECT_DOUBLE_EQ(stats.Average(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Max(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50.0), 0.0);
}

TEST(TimingStatsTest, PercentileIsNearestRank) {
  TimingStats stats;
  for (int v : {5, 1, 4, 2, 3}) stats.Add(v);  // order must not matter
  // Sorted: 1 2 3 4 5. Nearest rank ceil(p/100 * 5).
  EXPECT_DOUBLE_EQ(stats.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(20.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50.0), 3.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(90.0), 5.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(99.0), 5.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100.0), 5.0);
}

TEST(TimingStatsTest, PercentileEndpoints) {
  TimingStats stats;
  stats.Add(7.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50.0), 7.0);
  // Out-of-range p clamps to min/max rather than indexing out of bounds.
  EXPECT_DOUBLE_EQ(stats.Percentile(-5.0), 7.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(150.0), 7.0);
}

TEST(TimingStatsTest, PercentileOnSkewedTail) {
  TimingStats stats;
  for (int i = 0; i < 99; ++i) stats.Add(1.0);
  stats.Add(1000.0);  // one outlier
  EXPECT_DOUBLE_EQ(stats.Percentile(50.0), 1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(99.0), 1.0);   // rank 99 of 100
  EXPECT_DOUBLE_EQ(stats.Percentile(99.5), 1000.0);  // rank 100
}

}  // namespace
}  // namespace p3pdb
