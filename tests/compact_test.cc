// Tests for P3P compact policies (§4 of the P3P spec; the IE6 cookie
// mechanism of the paper's §3.2).

#include <gtest/gtest.h>

#include "p3p/augment.h"
#include "p3p/compact.h"
#include "workload/corpus.h"
#include "workload/paper_examples.h"

namespace p3pdb::p3p {
namespace {

TEST(CompactPolicyTest, VolgaEncoding) {
  Policy volga = workload::VolgaPolicy();
  AugmentPolicy(&volga);
  CompactPolicy compact = BuildCompactPolicy(volga);
  std::string text = CompactPolicyToString(compact);

  // Access, disputes absent, purposes with consent suffixes, recipients,
  // both retentions, union of categories.
  EXPECT_NE(text.find("CAO"), std::string::npos);   // contact-and-other
  EXPECT_NE(text.find("CUR"), std::string::npos);
  EXPECT_NE(text.find("IVDi"), std::string::npos);  // individual-decision opt-in
  EXPECT_NE(text.find("CONi"), std::string::npos);  // contact opt-in
  EXPECT_NE(text.find("OUR"), std::string::npos);
  EXPECT_NE(text.find("SAM"), std::string::npos);
  EXPECT_NE(text.find("STP"), std::string::npos);
  EXPECT_NE(text.find("BUS"), std::string::npos);
  EXPECT_NE(text.find("PUR"), std::string::npos);   // purchase
  EXPECT_NE(text.find("PHY"), std::string::npos);   // from user.name
  EXPECT_NE(text.find("ONL"), std::string::npos);   // from email
  EXPECT_EQ(text.find("DSP"), std::string::npos);   // Volga has no disputes
  EXPECT_EQ(text.find("TEL"), std::string::npos);
}

TEST(CompactPolicyTest, RoundTrip) {
  Policy volga = workload::VolgaPolicy();
  AugmentPolicy(&volga);
  CompactPolicy original = BuildCompactPolicy(volga);
  auto parsed = ParseCompactPolicy(CompactPolicyToString(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const CompactPolicy& p = parsed.value();
  EXPECT_EQ(p.access, original.access);
  EXPECT_EQ(p.purposes, original.purposes);
  EXPECT_EQ(p.recipients, original.recipients);
  EXPECT_EQ(p.retentions, original.retentions);
  EXPECT_EQ(p.categories, original.categories);
  EXPECT_EQ(p.has_disputes, original.has_disputes);
}

TEST(CompactPolicyTest, RoundTripOnCorpus) {
  for (Policy policy : workload::FortuneCorpus()) {
    AugmentPolicy(&policy);
    CompactPolicy original = BuildCompactPolicy(policy);
    auto parsed = ParseCompactPolicy(CompactPolicyToString(original));
    ASSERT_TRUE(parsed.ok()) << policy.name << ": " << parsed.status();
    EXPECT_EQ(CompactPolicyToString(parsed.value()),
              CompactPolicyToString(original))
        << policy.name;
  }
}

TEST(CompactPolicyTest, ParseHandWritten) {
  auto parsed = ParseCompactPolicy("NOI DSP NID CURa TELo OUR UNR STP PHY");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const CompactPolicy& p = parsed.value();
  EXPECT_EQ(p.access, "nonident");
  EXPECT_TRUE(p.has_disputes);
  EXPECT_TRUE(p.non_identifiable);
  ASSERT_EQ(p.purposes.size(), 2u);
  EXPECT_EQ(p.purposes[0].value, "current");
  EXPECT_EQ(p.purposes[0].required, Required::kAlways);
  EXPECT_EQ(p.purposes[1].value, "telemarketing");
  EXPECT_EQ(p.purposes[1].required, Required::kOptOut);
  EXPECT_TRUE(p.HasRecipient("unrelated"));
  EXPECT_TRUE(p.HasCategory("physical"));
}

TEST(CompactPolicyTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseCompactPolicy("XYZ").ok());
  EXPECT_FALSE(ParseCompactPolicy("CURx").ok());   // bad consent suffix
  EXPECT_FALSE(ParseCompactPolicy("STPo").ok());   // suffix on retention
  EXPECT_FALSE(ParseCompactPolicy("NOI NON").ok()); // duplicate access
  EXPECT_FALSE(ParseCompactPolicy("TOOLONG").ok());
  EXPECT_TRUE(ParseCompactPolicy("").ok());        // empty CP header
}

TEST(CompactPolicyTest, DuplicateTokensDeduplicate) {
  auto parsed = ParseCompactPolicy("CUR CUR OUR OUR");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().purposes.size(), 1u);
  EXPECT_EQ(parsed.value().recipients.size(), 1u);
}

// ---- Cookie admission (IE6 model) -----------------------------------------

CompactPolicy FromTokens(const char* tokens) {
  auto parsed = ParseCompactPolicy(tokens);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return std::move(parsed).value();
}

TEST(CookieAdmissionTest, LowAcceptsEverything) {
  CompactPolicy nasty = FromTokens("TELa UNR PHY ONL IND");
  EXPECT_EQ(EvaluateCookiePolicy(&nasty, CookiePrivacyLevel::kLow),
            CookieVerdict::kAccept);
  EXPECT_EQ(EvaluateCookiePolicy(nullptr, CookiePrivacyLevel::kLow),
            CookieVerdict::kAccept);
}

TEST(CookieAdmissionTest, BlockAllBlocksEverything) {
  CompactPolicy benign = FromTokens("NID CUR OUR STP");
  EXPECT_EQ(EvaluateCookiePolicy(&benign, CookiePrivacyLevel::kBlockAll),
            CookieVerdict::kBlock);
}

TEST(CookieAdmissionTest, MissingPolicyBlockedAtMedium) {
  EXPECT_EQ(EvaluateCookiePolicy(nullptr, CookiePrivacyLevel::kMedium),
            CookieVerdict::kBlock);
}

TEST(CookieAdmissionTest, AnonymousSessionCookieAccepted) {
  CompactPolicy session = FromTokens("CUR ADM OUR STP NAV COM");
  EXPECT_EQ(EvaluateCookiePolicy(&session, CookiePrivacyLevel::kMedium),
            CookieVerdict::kAccept);
  EXPECT_EQ(EvaluateCookiePolicy(&session, CookiePrivacyLevel::kHigh),
            CookieVerdict::kAccept);
}

TEST(CookieAdmissionTest, PiiForPrimaryUseIsLeashed) {
  CompactPolicy shop = FromTokens("CUR OUR DEL STP PHY ONL");
  EXPECT_EQ(EvaluateCookiePolicy(&shop, CookiePrivacyLevel::kMedium),
            CookieVerdict::kLeashed);
}

TEST(CookieAdmissionTest, PiiMarketingWithoutConsentBlocked) {
  CompactPolicy tracker = FromTokens("CUR TELa OUR IND PHY ONL");
  EXPECT_EQ(EvaluateCookiePolicy(&tracker, CookiePrivacyLevel::kMedium),
            CookieVerdict::kBlock);
}

TEST(CookieAdmissionTest, OptOutSatisfiesMediumButNotHigh) {
  CompactPolicy optout = FromTokens("CUR TELo OUR STP PHY");
  EXPECT_EQ(EvaluateCookiePolicy(&optout, CookiePrivacyLevel::kMedium),
            CookieVerdict::kLeashed);
  EXPECT_EQ(EvaluateCookiePolicy(&optout, CookiePrivacyLevel::kHigh),
            CookieVerdict::kBlock);
  CompactPolicy optin = FromTokens("CUR TELi OUR STP PHY");
  EXPECT_EQ(EvaluateCookiePolicy(&optin, CookiePrivacyLevel::kHigh),
            CookieVerdict::kLeashed);
}

TEST(CookieAdmissionTest, SharingWithUnrelatedBlocked) {
  CompactPolicy leaky = FromTokens("CUR OUR UNR STP PHY");
  EXPECT_EQ(EvaluateCookiePolicy(&leaky, CookiePrivacyLevel::kMedium),
            CookieVerdict::kBlock);
}

TEST(CookieAdmissionTest, NonIdentifiableAlwaysAccepted) {
  CompactPolicy nid = FromTokens("NID CUR TELa UNR PHY");
  EXPECT_EQ(EvaluateCookiePolicy(&nid, CookiePrivacyLevel::kMedium),
            CookieVerdict::kAccept);
  EXPECT_EQ(EvaluateCookiePolicy(&nid, CookiePrivacyLevel::kHigh),
            CookieVerdict::kAccept);
}

TEST(CookieAdmissionTest, VerdictNames) {
  EXPECT_STREQ(CookieVerdictName(CookieVerdict::kAccept), "accept");
  EXPECT_STREQ(CookieVerdictName(CookieVerdict::kLeashed), "leashed");
  EXPECT_STREQ(CookieVerdictName(CookieVerdict::kBlock), "block");
}

}  // namespace
}  // namespace p3pdb::p3p
