// Concurrency tests: PolicyServer's public API is documented thread-safe;
// hammer it from several threads and require correct, crash-free outcomes.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "server/policy_server.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"

namespace p3pdb::server {
namespace {

using workload::JanePreference;
using workload::JrcPreference;
using workload::PreferenceLevel;

TEST(ConcurrencyTest, ParallelMatchesAreConsistent) {
  auto server = PolicyServer::Create({.engine = EngineKind::kSql});
  ASSERT_TRUE(server.ok());
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  std::vector<int64_t> ids;
  for (const p3p::Policy& policy : corpus) {
    auto id = server.value()->InstallPolicy(policy);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  auto pref = server.value()->CompilePreference(
      JrcPreference(PreferenceLevel::kHigh));
  ASSERT_TRUE(pref.ok());

  // Single-threaded reference outcomes.
  std::vector<std::string> expected;
  for (int64_t id : ids) {
    auto r = server.value()->MatchPolicyId(pref.value(), id);
    ASSERT_TRUE(r.ok());
    expected.push_back(r.value().behavior);
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  auto worker = [&](int seed) {
    for (int i = 0; i < 200; ++i) {
      size_t pick = static_cast<size_t>(seed * 37 + i) % ids.size();
      auto r = server.value()->MatchPolicyId(pref.value(), ids[pick]);
      if (!r.ok()) {
        ++errors;
      } else if (r.value().behavior != expected[pick]) {
        ++mismatches;
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, InstallsRaceWithMatches) {
  auto server = PolicyServer::Create({.engine = EngineKind::kSql});
  ASSERT_TRUE(server.ok());
  auto first = server.value()->InstallPolicy(workload::VolgaPolicy());
  ASSERT_TRUE(first.ok());
  auto pref = server.value()->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok());

  std::atomic<int> errors{0};
  std::thread installer([&] {
    std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
    for (const p3p::Policy& policy : corpus) {
      if (!server.value()->InstallPolicy(policy).ok()) ++errors;
    }
  });
  std::thread matcher([&] {
    for (int i = 0; i < 300; ++i) {
      auto r = server.value()->MatchPolicyId(pref.value(), first.value());
      if (!r.ok() || r.value().behavior != "request") ++errors;
    }
  });
  installer.join();
  matcher.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(server.value()->policy_ids().size(), 30u);
}

TEST(ConcurrencyTest, ParallelCompiles) {
  auto server = PolicyServer::Create({.engine = EngineKind::kSql});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->InstallPolicy(workload::VolgaPolicy()).ok());
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        auto level = workload::AllPreferenceLevels()[(t + i) % 5];
        auto pref = server.value()->CompilePreference(JrcPreference(level));
        if (!pref.ok()) ++errors;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace p3pdb::server
