// Concurrency tests: PolicyServer's public API is documented thread-safe;
// hammer it from several threads and require correct, crash-free outcomes.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "server/policy_server.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"

namespace p3pdb::server {
namespace {

using workload::JanePreference;
using workload::JrcPreference;
using workload::PreferenceLevel;

TEST(ConcurrencyTest, ParallelMatchesAreConsistent) {
  auto server = PolicyServer::Create({.engine = EngineKind::kSql});
  ASSERT_TRUE(server.ok());
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  std::vector<int64_t> ids;
  for (const p3p::Policy& policy : corpus) {
    auto id = server.value()->InstallPolicy(policy);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  auto pref = server.value()->CompilePreference(
      JrcPreference(PreferenceLevel::kHigh));
  ASSERT_TRUE(pref.ok());

  // Single-threaded reference outcomes.
  std::vector<std::string> expected;
  for (int64_t id : ids) {
    auto r = server.value()->MatchPolicyId(pref.value(), id);
    ASSERT_TRUE(r.ok());
    expected.push_back(r.value().behavior);
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> errors{0};
  auto worker = [&](int seed) {
    for (int i = 0; i < 200; ++i) {
      size_t pick = static_cast<size_t>(seed * 37 + i) % ids.size();
      auto r = server.value()->MatchPolicyId(pref.value(), ids[pick]);
      if (!r.ok()) {
        ++errors;
      } else if (r.value().behavior != expected[pick]) {
        ++mismatches;
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, InstallsRaceWithMatches) {
  auto server = PolicyServer::Create({.engine = EngineKind::kSql});
  ASSERT_TRUE(server.ok());
  auto first = server.value()->InstallPolicy(workload::VolgaPolicy());
  ASSERT_TRUE(first.ok());
  auto pref = server.value()->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok());

  std::atomic<int> errors{0};
  std::thread installer([&] {
    std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
    for (const p3p::Policy& policy : corpus) {
      if (!server.value()->InstallPolicy(policy).ok()) ++errors;
    }
  });
  std::thread matcher([&] {
    for (int i = 0; i < 300; ++i) {
      auto r = server.value()->MatchPolicyId(pref.value(), first.value());
      if (!r.ok() || r.value().behavior != "request") ++errors;
    }
  });
  installer.join();
  matcher.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(server.value()->policy_ids().size(), 30u);
}

// 8 matcher threads hammer MatchUri while one installer keeps re-versioning
// a policy; with record_matches on, every successful match must land in the
// MatchLog — the shared-lock match path may not lose log rows.
TEST(ConcurrencyTest, MixedMatchUriAndReinstallLosesNoMatchLogRows) {
  auto server = PolicyServer::Create(
      {.engine = EngineKind::kSql, .record_matches = true});
  ASSERT_TRUE(server.ok());
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  for (const p3p::Policy& policy : corpus) {
    ASSERT_TRUE(server.value()->InstallPolicy(policy).ok());
  }
  ASSERT_TRUE(server.value()
                  ->InstallReferenceFile(workload::CorpusReferenceFile(corpus))
                  .ok());
  auto pref = server.value()->CompilePreference(
      JrcPreference(PreferenceLevel::kMedium));
  ASSERT_TRUE(pref.ok());

  std::vector<std::string> paths;
  for (const p3p::Policy& policy : corpus) {
    paths.push_back("/" + policy.name + "/index.html");
  }

  constexpr int kThreads = 8;
  constexpr int kMatchesPerThread = 150;
  std::atomic<int> errors{0};
  std::atomic<int> successful_matches{0};
  std::thread installer([&] {
    for (int i = 0; i < 10; ++i) {
      // Same name every time: each install is a new version of policy 0.
      if (!server.value()->InstallPolicy(corpus[0]).ok()) ++errors;
    }
  });
  std::vector<std::thread> matchers;
  for (int t = 0; t < kThreads; ++t) {
    matchers.emplace_back([&, t] {
      for (int i = 0; i < kMatchesPerThread; ++i) {
        auto r = server.value()->MatchUri(pref.value(),
                                          paths[(t * 13 + i) % paths.size()]);
        if (!r.ok() || !r.value().policy_found) {
          ++errors;
        } else {
          ++successful_matches;
        }
      }
    });
  }
  installer.join();
  for (std::thread& t : matchers) t.join();
  ASSERT_EQ(errors.load(), 0);
  EXPECT_EQ(successful_matches.load(), kThreads * kMatchesPerThread);

  auto logged = server.value()->database()->Execute(
      "SELECT COUNT(*) FROM MatchLog");
  ASSERT_TRUE(logged.ok());
  EXPECT_EQ(logged.value().rows[0][0].AsInteger(),
            successful_matches.load());
  // And the versioning thread took effect: 11 versions of the first policy.
  EXPECT_EQ(server.value()->PolicyVersion(corpus[0].name), 11);
}

// Match-cache stress: matcher threads hammer a cached server while an
// installer churns the catalog (policy re-versions + reference-file
// re-installs, each bumping the epoch). Every served result — cached or
// computed — must equal the single-threaded reference outcome, and the
// cache's counters must stay coherent.
TEST(ConcurrencyTest, CachedMatchesStayCorrectUnderCatalogChurn) {
  auto server = PolicyServer::Create({.engine = EngineKind::kSql});
  ASSERT_TRUE(server.ok());
  ASSERT_NE(server.value()->match_cache(), nullptr);
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  for (const p3p::Policy& policy : corpus) {
    ASSERT_TRUE(server.value()->InstallPolicy(policy).ok());
  }
  ASSERT_TRUE(server.value()
                  ->InstallReferenceFile(workload::CorpusReferenceFile(corpus))
                  .ok());
  auto pref = server.value()->CompilePreference(
      JrcPreference(PreferenceLevel::kHigh));
  ASSERT_TRUE(pref.ok());

  std::vector<std::string> paths;
  for (const p3p::Policy& policy : corpus) {
    paths.push_back("/" + policy.name + "/index.html");
  }
  // Reference outcomes. The installer below re-installs the same policy
  // contents (new versions, new ids) and the same reference file, so the
  // behavior for each path is invariant throughout the churn even though
  // the resolved policy id changes.
  std::vector<std::string> expected;
  for (const std::string& path : paths) {
    auto r = server.value()->MatchUri(pref.value(), path);
    ASSERT_TRUE(r.ok());
    expected.push_back(r.value().behavior);
  }

  constexpr int kThreads = 6;
  constexpr int kMatchesPerThread = 200;
  std::atomic<int> errors{0};
  std::atomic<int> mismatches{0};
  std::thread installer([&] {
    for (int i = 0; i < 8; ++i) {
      if (!server.value()->InstallPolicy(corpus[i % corpus.size()]).ok()) {
        ++errors;
      }
      if (!server.value()
               ->InstallReferenceFile(workload::CorpusReferenceFile(corpus))
               .ok()) {
        ++errors;
      }
    }
  });
  std::vector<std::thread> matchers;
  for (int t = 0; t < kThreads; ++t) {
    matchers.emplace_back([&, t] {
      for (int i = 0; i < kMatchesPerThread; ++i) {
        size_t pick = static_cast<size_t>(t * 17 + i) % paths.size();
        auto r = server.value()->MatchUri(pref.value(), paths[pick]);
        if (!r.ok()) {
          ++errors;
        } else if (r.value().behavior != expected[pick]) {
          ++mismatches;
        }
      }
    });
  }
  installer.join();
  for (std::thread& t : matchers) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  // Counter coherence: every matcher lookup was either a hit or a miss,
  // and the live-entry count agrees with the shards' contents.
  MatchCache::Stats stats = server.value()->match_cache()->TotalStats();
  EXPECT_GE(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kMatchesPerThread);
  EXPECT_EQ(stats.entries, server.value()->match_cache()->size());
  EXPECT_LE(stats.entries,
            server.value()->match_cache()->shard_count() *
                server.value()->match_cache()->capacity_per_shard());
}

TEST(ConcurrencyTest, ParallelCompiles) {
  auto server = PolicyServer::Create({.engine = EngineKind::kSql});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->InstallPolicy(workload::VolgaPolicy()).ok());
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 50; ++i) {
        auto level = workload::AllPreferenceLevels()[(t + i) % 5];
        auto pref = server.value()->CompilePreference(JrcPreference(level));
        if (!pref.ok()) ++errors;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace p3pdb::server
