// Cross-engine differential harness.
//
// Draws seeded random (policy, preference) pairs — corpus policies crossed
// with preferences from the full pattern grammar — and checks that every
// read-only engine, plus the memoized (cached) match path exercised both
// cold and warm, reports byte-identical behavior and fired rule. One
// disagreement fails the suite loudly: the harness greedily minimizes the
// pair (dropping preference rules, then policy statements, while the
// disagreement persists) and prints the minimized preference and policy
// XML, and writes the same repro to differential_failure.txt so CI can
// upload it as an artifact.
//
// The seed comes from P3PDB_DIFFERENTIAL_SEED (default 2003) so a CI
// failure can be replayed locally with the same draw.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "appel/model.h"
#include "common/random.h"
#include "p3p/policy_xml.h"
#include "server/policy_server.h"
#include "workload/corpus.h"
#include "workload/random_preferences.h"

namespace p3pdb {
namespace {

using server::Augmentation;
using server::CompiledPreference;
using server::EngineKind;
using server::MatchResult;
using server::PolicyServer;
using workload::RandomPreference;
using workload::RandomPreferenceOptions;

constexpr const char* kFailureArtifact = "differential_failure.txt";
/// Written next to the repro on failure: each engine's statement-stats
/// table, so CI shows which rule queries ran (and how hot) when the
/// engines diverged.
constexpr const char* kStatementsArtifact = "differential_statements.txt";

// The engines under differential test. kXQueryXTable is exercised by
// property_test; here the focus is the read-only matrix plus the cache.
struct EngineConfig {
  const char* label;
  EngineKind kind;
  bool cached;  // enable the match cache and match each pair twice
  bool disk;    // back the server by the disk storage engine (WAL + pages)
};

constexpr EngineConfig kConfigs[] = {
    {"native-appel", EngineKind::kNativeAppel, false, false},
    {"sql", EngineKind::kSql, false, false},
    {"sql-simple", EngineKind::kSqlSimple, false, false},
    {"xquery-native", EngineKind::kXQueryNative, false, false},
    {"sql+cache", EngineKind::kSql, true, false},
    {"sql+disk", EngineKind::kSql, false, true},
};

/// Applied to each engine's raw result before comparison; the perturbation
/// test injects a fault here to prove the harness fails loudly.
using Perturbation =
    std::function<void(const char* label, bool second_pass, MatchResult*)>;

struct Observation {
  std::string label;   // engine label, "+warm" suffix for the cached repeat
  MatchResult result;
};

struct Disagreement {
  appel::AppelRuleset preference;
  p3p::Policy policy;
  std::vector<Observation> observations;
};

std::unique_ptr<PolicyServer> MakeEngine(const EngineConfig& config) {
  PolicyServer::Options options;
  options.engine = config.kind;
  options.augmentation = config.kind == EngineKind::kNativeAppel
                             ? Augmentation::kPerMatch
                             : Augmentation::kAtInstall;
  options.enable_match_cache = config.cached;
  if (config.disk) {
    // Fresh directory per server: minimization rebuilds engines per
    // candidate and must not recover a previous candidate's catalog.
    static int next_dir = 0;
    options.storage_path =
        ::testing::TempDir() + "p3pdb_diff_disk_" + std::to_string(next_dir++);
    std::filesystem::remove_all(options.storage_path);
  }
  auto server = PolicyServer::Create(options);
  EXPECT_TRUE(server.ok()) << server.status();
  return std::move(server).value();
}

/// Evaluates one (preference, policy) pair on every engine. Returns the
/// observations, or nullopt when the pair is not comparable (a translator
/// legitimately rejects the preference). `on_error` collects hard failures.
std::optional<std::vector<Observation>> Observe(
    const appel::AppelRuleset& preference, const p3p::Policy& policy,
    const Perturbation& perturb, std::string* error) {
  std::vector<Observation> observations;
  for (const EngineConfig& config : kConfigs) {
    std::unique_ptr<PolicyServer> server = MakeEngine(config);
    auto id = server->InstallPolicy(policy);
    if (!id.ok()) {
      *error = std::string(config.label) + ": install: " +
               id.status().ToString();
      return std::nullopt;
    }
    auto compiled = server->CompilePreference(preference);
    if (!compiled.ok()) {
      // Translator rejected the preference (e.g. depth budget): the pair is
      // simply outside this engine matrix; skip it entirely.
      return std::nullopt;
    }
    int passes = config.cached ? 2 : 1;
    for (int pass = 0; pass < passes; ++pass) {
      auto result = server->MatchPolicyId(compiled.value(), id.value());
      if (!result.ok()) {
        *error = std::string(config.label) + ": match: " +
                 result.status().ToString();
        return std::nullopt;
      }
      Observation obs;
      obs.label = config.label;
      if (pass == 1) obs.label += "+warm";
      obs.result = result.value();
      if (perturb) perturb(config.label, pass == 1, &obs.result);
      observations.push_back(std::move(obs));
    }
  }
  return observations;
}

bool Agree(const std::vector<Observation>& observations) {
  for (size_t i = 1; i < observations.size(); ++i) {
    if (observations[i].result.behavior != observations[0].result.behavior ||
        observations[i].result.fired_rule_index !=
            observations[0].result.fired_rule_index) {
      return false;
    }
  }
  return true;
}

/// True when the pair still produces a disagreement (used as the oracle
/// during minimization; inconclusive pairs count as "no disagreement").
bool Disagrees(const appel::AppelRuleset& preference,
               const p3p::Policy& policy, const Perturbation& perturb) {
  if (!preference.Validate().ok() || !policy.Validate().ok()) {
    return false;
  }
  std::string error;
  auto observations = Observe(preference, policy, perturb, &error);
  return observations.has_value() && !Agree(*observations);
}

/// Greedy delta-debugging: drop preference rules, then policy statements,
/// as long as the disagreement persists.
Disagreement Minimize(Disagreement found, const Perturbation& perturb) {
  bool shrunk = true;
  while (shrunk && found.preference.rules.size() > 1) {
    shrunk = false;
    for (size_t i = 0; i < found.preference.rules.size(); ++i) {
      appel::AppelRuleset candidate = found.preference;
      candidate.rules.erase(candidate.rules.begin() +
                            static_cast<long>(i));
      if (Disagrees(candidate, found.policy, perturb)) {
        found.preference = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  shrunk = true;
  while (shrunk && found.policy.statements.size() > 1) {
    shrunk = false;
    for (size_t i = 0; i < found.policy.statements.size(); ++i) {
      p3p::Policy candidate = found.policy;
      candidate.statements.erase(candidate.statements.begin() +
                                 static_cast<long>(i));
      if (Disagrees(found.preference, candidate, perturb)) {
        found.policy = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  // Refresh the observations for the minimized pair so the report shows
  // what each engine says about exactly the repro being printed.
  std::string error;
  auto observations = Observe(found.preference, found.policy, perturb, &error);
  if (observations.has_value()) found.observations = *observations;
  return found;
}

std::string RenderDisagreement(const Disagreement& d, uint64_t seed) {
  std::string out;
  out += "cross-engine disagreement (seed " + std::to_string(seed) + ")\n\n";
  for (const Observation& obs : d.observations) {
    out += "  " + obs.label + ": behavior=" + obs.result.behavior +
           " fired_rule=" + std::to_string(obs.result.fired_rule_index) +
           "\n";
  }
  out += "\nminimized preference (APPEL):\n";
  out += appel::RulesetToText(d.preference);
  out += "\nminimized policy (P3P):\n";
  out += p3p::PolicyToText(d.policy);
  out += "\nreplay: P3PDB_DIFFERENTIAL_SEED=" + std::to_string(seed) +
         " ./differential_test\n";
  return out;
}

void WriteFailureArtifact(const std::string& report) {
  std::ofstream out(kFailureArtifact, std::ios::trunc);
  out << report;
}

uint64_t SeedFromEnv() {
  const char* env = std::getenv("P3PDB_DIFFERENTIAL_SEED");
  if (env == nullptr || *env == '\0') return 2003;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

/// Runs the sweep: `preference_count` random preferences crossed with the
/// corpus, every comparable pair checked on every engine. Returns the first
/// (minimized) disagreement, and the number of pairs actually compared.
std::optional<Disagreement> Sweep(uint64_t seed, int preference_count,
                                  const Perturbation& perturb,
                                  size_t* pairs_checked) {
  // One persistent server per engine amortizes schema installation across
  // the sweep; minimization rebuilds fresh servers per candidate.
  std::vector<p3p::Policy> policies =
      workload::FortuneCorpus({.seed = seed, .policy_count = 29});
  struct Fixture {
    EngineConfig config;
    std::unique_ptr<PolicyServer> server;
    std::vector<int64_t> ids;
  };
  std::vector<Fixture> fixtures;
  for (const EngineConfig& config : kConfigs) {
    Fixture fx{config, MakeEngine(config), {}};
    for (const p3p::Policy& policy : policies) {
      auto id = fx.server->InstallPolicy(policy);
      EXPECT_TRUE(id.ok()) << id.status();
      fx.ids.push_back(id.value());
    }
    fixtures.push_back(std::move(fx));
  }

  Random rng(seed * 7919 + 1);
  RandomPreferenceOptions options;
  options.allow_exact_connectives = false;  // simple-SQL/XQuery boundary
  *pairs_checked = 0;
  for (int p = 0; p < preference_count; ++p) {
    appel::AppelRuleset preference = RandomPreference(&rng, options);
    if (!preference.Validate().ok()) continue;

    std::vector<CompiledPreference> compiled;
    bool all_compiled = true;
    for (Fixture& fx : fixtures) {
      auto c = fx.server->CompilePreference(preference);
      if (!c.ok()) {
        all_compiled = false;
        break;
      }
      compiled.push_back(std::move(c).value());
    }
    if (!all_compiled) continue;

    for (size_t pol = 0; pol < policies.size(); ++pol) {
      std::vector<Observation> observations;
      for (size_t f = 0; f < fixtures.size(); ++f) {
        int passes = fixtures[f].config.cached ? 2 : 1;
        for (int pass = 0; pass < passes; ++pass) {
          auto result = fixtures[f].server->MatchPolicyId(
              compiled[f], fixtures[f].ids[pol]);
          EXPECT_TRUE(result.ok())
              << fixtures[f].config.label << ": " << result.status();
          if (!result.ok()) return std::nullopt;
          Observation obs;
          obs.label = fixtures[f].config.label;
          if (pass == 1) obs.label += "+warm";
          obs.result = result.value();
          if (perturb) {
            perturb(fixtures[f].config.label, pass == 1, &obs.result);
          }
          observations.push_back(std::move(obs));
        }
      }
      ++*pairs_checked;
      if (!Agree(observations)) {
        // Dump every engine's statement telemetry before minimization
        // rebuilds servers: the counts describe the sweep that diverged.
        // The header records the seed and each engine's storage mode so
        // the artifact alone is enough to replay the exact configuration.
        std::string stats_dump = "seed: " + std::to_string(seed) + "\n\n";
        for (const Fixture& fx : fixtures) {
          stats_dump += std::string("== ") + fx.config.label + " ==\n";
          stats_dump += std::string("storage: ") +
                        (fx.config.disk ? "disk" : "in-memory") + "\n";
          stats_dump += fx.server->RenderStatementStatsText(0);
          stats_dump += "\n";
        }
        std::ofstream(kStatementsArtifact, std::ios::trunc) << stats_dump;
        Disagreement found;
        found.preference = preference;
        found.policy = policies[pol];
        found.observations = std::move(observations);
        return Minimize(std::move(found), perturb);
      }
    }
  }
  return std::nullopt;
}

TEST(DifferentialTest, EnginesAndCachedPathAgreeOnRandomPairs) {
  const uint64_t seed = SeedFromEnv();
  size_t pairs_checked = 0;
  // 40 preferences x 29 corpus policies = 1160 candidate pairs; a few drop
  // out when a translator rejects the draw, the floor below keeps the
  // sweep honest.
  std::optional<Disagreement> disagreement =
      Sweep(seed, /*preference_count=*/40, /*perturb=*/nullptr,
            &pairs_checked);
  if (disagreement.has_value()) {
    std::string report = RenderDisagreement(*disagreement, seed);
    WriteFailureArtifact(report);
    FAIL() << report;
  }
  EXPECT_GE(pairs_checked, 1000u)
      << "sweep degenerated: too many draws were rejected";
}

TEST(DifferentialTest, EnginesAgreeWithPlannerDisabled) {
  // The same cross-engine sweep with the EXISTS-decorrelation planner and
  // plan cache globally disabled. P3PDB_NO_PLANNER is read when each
  // Database's options are constructed, so setting it before the fixtures
  // are built inside Sweep() turns the planner off for every SQL engine in
  // the matrix; the correlated fallback path must agree with the native and
  // XQuery engines pair for pair.
  ASSERT_EQ(setenv("P3PDB_NO_PLANNER", "1", /*overwrite=*/1), 0);
  const uint64_t seed = SeedFromEnv();
  size_t pairs_checked = 0;
  std::optional<Disagreement> disagreement =
      Sweep(seed, /*preference_count=*/10, /*perturb=*/nullptr,
            &pairs_checked);
  unsetenv("P3PDB_NO_PLANNER");
  if (disagreement.has_value()) {
    std::string report = RenderDisagreement(*disagreement, seed);
    WriteFailureArtifact(report);
    FAIL() << report;
  }
  EXPECT_GE(pairs_checked, 250u)
      << "sweep degenerated: too many draws were rejected";
}

TEST(DifferentialTest, PerturbedEngineFailsLoudlyWithMinimizedRepro) {
  // Fault injection at the harness layer: misreport one engine's behavior
  // on a slice of the pairs and require the sweep to catch it, minimize
  // it, and produce the repro artifact — the "does the alarm ring" test.
  Perturbation flip = [](const char* label, bool second_pass,
                         MatchResult* result) {
    (void)second_pass;
    if (std::string(label) == "sql-simple" &&
        result->fired_rule_index >= 0) {
      result->behavior += "-perturbed";
    }
  };
  size_t pairs_checked = 0;
  std::optional<Disagreement> disagreement =
      Sweep(/*seed=*/2003, /*preference_count=*/6, flip, &pairs_checked);
  ASSERT_TRUE(disagreement.has_value())
      << "perturbed engine went undetected across " << pairs_checked
      << " pairs";

  std::string report = RenderDisagreement(*disagreement, 2003);
  EXPECT_NE(report.find("sql-simple"), std::string::npos);
  EXPECT_NE(report.find("-perturbed"), std::string::npos);
  EXPECT_NE(report.find("minimized preference"), std::string::npos);
  // Minimization kept the repro small and still-disagreeing.
  EXPECT_TRUE(Disagrees(disagreement->preference, disagreement->policy, flip));
  EXPECT_LE(disagreement->preference.rules.size(), 4u);

  // The artifact machinery CI uploads on failure works end to end.
  WriteFailureArtifact(report);
  std::ifstream artifact(kFailureArtifact);
  ASSERT_TRUE(artifact.good());
  std::string contents((std::istreambuf_iterator<char>(artifact)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, report);
  std::remove(kFailureArtifact);

  // The injected disagreement also produced the statement-stats dump, with
  // the translated rule queries the sweep actually executed.
  std::ifstream stats(kStatementsArtifact);
  ASSERT_TRUE(stats.good());
  std::string stats_contents((std::istreambuf_iterator<char>(stats)),
                             std::istreambuf_iterator<char>());
  EXPECT_NE(stats_contents.find("== sql-simple =="), std::string::npos);
  EXPECT_NE(stats_contents.find("fingerprint"), std::string::npos);
  EXPECT_NE(stats_contents.find("select"), std::string::npos);
  // The artifact records the replay seed and each engine's storage mode.
  EXPECT_NE(stats_contents.find("seed: 2003"), std::string::npos);
  EXPECT_NE(stats_contents.find("storage: in-memory"), std::string::npos);
  EXPECT_NE(stats_contents.find("storage: disk"), std::string::npos);
  std::remove(kStatementsArtifact);
}

}  // namespace
}  // namespace p3pdb
