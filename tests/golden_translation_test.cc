// Golden-output tests: the exact translations of the paper's Figure 12
// rule (the simplified first rule of Jane's preference) are pinned
// character for character. These are this repo's analogs of the paper's
// Figures 13 (simple-schema SQL), 15 (optimized-schema SQL), and 18
// (XQuery). A change in translator output — intentional or not — must be
// reviewed against these figures.

#include <gtest/gtest.h>

#include "translator/sql_optimized.h"
#include "translator/sql_simple.h"
#include "workload/paper_examples.h"
#include "xquery/parser.h"
#include "xquery/translate_appel.h"
#include "xquery/xtable.h"

namespace p3pdb {
namespace {

// Figure 13 analog: one EXISTS subquery per element, including the
// per-vocabulary-value Admin and Contact tables.
constexpr const char* kGoldenSimpleSql =
    "SELECT 'block' FROM ApplicablePolicy WHERE EXISTS (SELECT * FROM "
    "Policy WHERE Policy.policy_id = ApplicablePolicy.policy_id AND "
    "(EXISTS (SELECT * FROM Statement WHERE Statement.policy_id = "
    "Policy.policy_id AND (EXISTS (SELECT * FROM Purpose WHERE "
    "Purpose.statement_id = Statement.statement_id AND Purpose.policy_id = "
    "Statement.policy_id AND (EXISTS (SELECT * FROM Admin WHERE "
    "Admin.purpose_id = Purpose.purpose_id AND Admin.statement_id = "
    "Purpose.statement_id AND Admin.policy_id = Purpose.policy_id) OR "
    "EXISTS (SELECT * FROM Contact WHERE Contact.purpose_id = "
    "Purpose.purpose_id AND Contact.statement_id = Purpose.statement_id "
    "AND Contact.policy_id = Purpose.policy_id AND Contact.required = "
    "'always')))))))";

// Figure 15 analog: the two vocabulary subqueries merge into one Purpose
// subquery with value predicates.
constexpr const char* kGoldenOptimizedSql =
    "SELECT 'block' FROM ApplicablePolicy WHERE EXISTS (SELECT * FROM "
    "Policy WHERE Policy.policy_id = ApplicablePolicy.policy_id AND "
    "(EXISTS (SELECT * FROM Statement WHERE Statement.policy_id = "
    "Policy.policy_id AND (EXISTS (SELECT * FROM Purpose WHERE "
    "Purpose.policy_id = Statement.policy_id AND Purpose.statement_id = "
    "Statement.statement_id AND ((Purpose.purpose = 'admin') OR "
    "(Purpose.purpose = 'contact' AND Purpose.required = 'always')))))))";

// Figure 18 analog.
constexpr const char* kGoldenXQuery =
    "if (document(\"applicable-policy\")[POLICY[STATEMENT[PURPOSE[(admin "
    "or contact[@required = \"always\"])]]]]) then <block/> else ()";

TEST(GoldenTranslationTest, SimpleSchemaSqlMatchesFigure13) {
  translator::SimpleSqlTranslator translator;
  auto sql = translator.TranslateRule(workload::JaneSimplifiedFirstRule());
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_EQ(sql.value(), kGoldenSimpleSql);
}

TEST(GoldenTranslationTest, OptimizedSchemaSqlMatchesFigure15) {
  translator::OptimizedSqlTranslator translator;
  auto sql = translator.TranslateRule(workload::JaneSimplifiedFirstRule());
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_EQ(sql.value(), kGoldenOptimizedSql);
}

// The parameterized (read-only) variants differ from the figures in exactly
// one place: the join to the materialized ApplicablePolicy row becomes a
// `?` bind parameter.
TEST(GoldenTranslationTest, ParameterizedSimpleSqlSwapsJoinForPlaceholder) {
  translator::SimpleSqlTranslator translator(/*parameterized=*/true);
  auto sql = translator.TranslateRule(workload::JaneSimplifiedFirstRule());
  ASSERT_TRUE(sql.ok()) << sql.status();
  std::string expected = kGoldenSimpleSql;
  size_t pos = expected.find("Policy.policy_id = ApplicablePolicy.policy_id");
  ASSERT_NE(pos, std::string::npos);
  expected.replace(pos,
                   std::string("Policy.policy_id = ApplicablePolicy.policy_id")
                       .size(),
                   "Policy.policy_id = ?");
  EXPECT_EQ(sql.value(), expected);
  EXPECT_EQ(translator::RuleParamCount(workload::JaneSimplifiedFirstRule(),
                                       /*parameterized=*/true),
            1u);
}

TEST(GoldenTranslationTest, ParameterizedOptimizedSqlSwapsJoinForPlaceholder) {
  translator::OptimizedSqlTranslator translator(/*parameterized=*/true);
  auto sql = translator.TranslateRule(workload::JaneSimplifiedFirstRule());
  ASSERT_TRUE(sql.ok()) << sql.status();
  std::string expected = kGoldenOptimizedSql;
  size_t pos = expected.find("Policy.policy_id = ApplicablePolicy.policy_id");
  ASSERT_NE(pos, std::string::npos);
  expected.replace(pos,
                   std::string("Policy.policy_id = ApplicablePolicy.policy_id")
                       .size(),
                   "Policy.policy_id = ?");
  EXPECT_EQ(sql.value(), expected);
}

TEST(GoldenTranslationTest, CatchAllRuleTakesNoParameters) {
  appel::AppelRule catch_all;
  catch_all.behavior = "request";
  translator::SimpleSqlTranslator translator(/*parameterized=*/true);
  auto sql = translator.TranslateRule(catch_all);
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_EQ(sql.value(), "SELECT 'request' FROM ApplicablePolicy");
  EXPECT_EQ(translator::RuleParamCount(catch_all, /*parameterized=*/true),
            0u);
}

TEST(GoldenTranslationTest, XQueryMatchesFigure18) {
  xquery::AppelToXQueryTranslator translator;
  auto text = translator.TranslateRule(workload::JaneSimplifiedFirstRule());
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_EQ(text.value(), kGoldenXQuery);
}

TEST(GoldenTranslationTest, XTableRecoversTheSimpleSchemaShape) {
  // XTABLE over the XQuery must land back on the simple schema's
  // one-table-per-element shape (modulo parenthesization) — that is the
  // "missed optimization" the paper measures.
  xquery::AppelToXQueryTranslator to_xq;
  auto text = to_xq.TranslateRule(workload::JaneSimplifiedFirstRule());
  ASSERT_TRUE(text.ok());
  auto query = xquery::ParseQuery(text.value());
  ASSERT_TRUE(query.ok());
  xquery::XTableTranslator to_sql;
  auto sql = to_sql.TranslateQuery(query.value());
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql.value().find("FROM Admin"), std::string::npos);
  EXPECT_NE(sql.value().find("FROM Contact"), std::string::npos);
  EXPECT_NE(sql.value().find("Contact.required = 'always'"),
            std::string::npos);
  EXPECT_EQ(sql.value().find("Purpose.purpose ="), std::string::npos);
}

}  // namespace
}  // namespace p3pdb
