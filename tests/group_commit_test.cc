// WAL group commit tests: the two-phase stage/wait surface, leader
// fsync coalescing across staged commits, durability across reopen, and
// the checkpoint interaction (a checkpoint image durably covers every
// commit staged before it).

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/policy_server.h"
#include "sqldb/database.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::sqldb {
namespace {

using server::EngineKind;
using server::PolicyServer;

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "p3pdb_group_commit_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Database::Options GroupCommitOptions(const std::string& dir,
                                     uint64_t window_us = 0) {
  Database::Options o;
  o.storage_path = dir;
  o.storage_group_commit = true;
  o.storage_group_commit_window_us = window_us;
  return o;
}

// One WaitDurable on the newest ticket must cover every older staged
// commit with a single fsync — the deterministic (single-threaded) form of
// coalescing, independent of scheduler luck.
TEST(GroupCommitTest, OneSyncCoversAllStagedCommits) {
  const std::string dir = TestDir("stage_many");
  {
    Database db(GroupCommitOptions(dir));
    ASSERT_TRUE(db.storage_active()) << db.storage_status();
    ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER, PRIMARY KEY (id))")
                    .ok());

    const uint64_t syncs_before = db.storage_stats().wal_group_syncs;
    std::vector<uint64_t> tickets;
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(db.BeginTransaction().ok());
      ASSERT_TRUE(db.InsertRow("t", {Value::Integer(i)}).ok());
      auto ticket = db.CommitTransactionStaged();
      ASSERT_TRUE(ticket.ok()) << ticket.status();
      ASSERT_GT(ticket.value(), 0u);
      tickets.push_back(ticket.value());
    }
    // Waiting on the newest ticket makes this thread the leader; its one
    // fsync covers all eight staged commit records.
    ASSERT_TRUE(db.WaitDurable(tickets.back()).ok());
    EXPECT_EQ(db.storage_stats().wal_group_syncs, syncs_before + 1);
    // The older tickets are already durable; waiting on them adds no sync.
    for (uint64_t ticket : tickets) {
      ASSERT_TRUE(db.WaitDurable(ticket).ok());
    }
    EXPECT_EQ(db.storage_stats().wal_group_syncs, syncs_before + 1);
  }
  Database reopened(GroupCommitOptions(dir));
  ASSERT_TRUE(reopened.storage_active());
  auto rows = reopened.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().rows[0][0].AsInteger(), 8);
  std::filesystem::remove_all(dir);
}

// Ticket 0 means "nothing to make durable" (empty txn, or sync_on_commit
// off); WaitDurable on it must be a no-op rather than a hang.
TEST(GroupCommitTest, EmptyTransactionStagesTicketZero) {
  const std::string dir = TestDir("empty_txn");
  Database db(GroupCommitOptions(dir));
  ASSERT_TRUE(db.storage_active());
  ASSERT_TRUE(db.BeginTransaction().ok());
  auto ticket = db.CommitTransactionStaged();
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(ticket.value(), 0u);
  EXPECT_TRUE(db.WaitDurable(0).ok());
  std::filesystem::remove_all(dir);
}

// Concurrent committers racing through the stage/wait path: all commits
// must be durable and the total fsync count must never exceed the commit
// count (followers ride the leader's sync; with a window the leader
// lingers so followers can join).
TEST(GroupCommitTest, ConcurrentCommittersAreDurableAndCoalesce) {
  const std::string dir = TestDir("concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  {
  Database db(GroupCommitOptions(dir, /*window_us=*/500));
  ASSERT_TRUE(db.storage_active());
  ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER, PRIMARY KEY (id))")
                  .ok());

  // The database serializes transaction building; the group-commit path is
  // about the fsync tail, so the race worth staging is stage-then-wait from
  // many threads with the staging serialized by a mutex, the waiting not.
  std::mutex stage_mu;
  std::atomic<int> errors{0};
  std::atomic<int> next_id{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t ticket = 0;
        {
          std::lock_guard<std::mutex> lock(stage_mu);
          if (!db.BeginTransaction().ok() ||
              !db.InsertRow("t", {Value::Integer(next_id.fetch_add(1))})
                   .ok()) {
            ++errors;
            continue;
          }
          auto staged = db.CommitTransactionStaged();
          if (!staged.ok()) {
            ++errors;
            continue;
          }
          ticket = staged.value();
        }
        if (!db.WaitDurable(ticket).ok()) ++errors;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(errors.load(), 0);

  const StorageStats stats = db.storage_stats();
  EXPECT_GE(stats.wal_group_syncs, 1u);
  EXPECT_LE(stats.wal_group_syncs, stats.wal_commits);
  }
  Database reopened(GroupCommitOptions(dir));
  ASSERT_TRUE(reopened.storage_active());
  auto rows = reopened.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().rows[0][0].AsInteger(), kThreads * kPerThread);
  std::filesystem::remove_all(dir);
}

// A checkpoint between staging and waiting: the checkpoint image durably
// contains the staged commit, so WaitDurable must return without another
// fsync of a (by then retired) WAL generation.
TEST(GroupCommitTest, CheckpointSatisfiesStagedTickets) {
  const std::string dir = TestDir("checkpoint");
  {
    Database db(GroupCommitOptions(dir));
    ASSERT_TRUE(db.storage_active());
    ASSERT_TRUE(db.Execute("CREATE TABLE t (id INTEGER, PRIMARY KEY (id))")
                    .ok());
    ASSERT_TRUE(db.BeginTransaction().ok());
    ASSERT_TRUE(db.InsertRow("t", {Value::Integer(1)}).ok());
    auto ticket = db.CommitTransactionStaged();
    ASSERT_TRUE(ticket.ok());
    ASSERT_GT(ticket.value(), 0u);

    const uint64_t syncs_before = db.storage_stats().wal_group_syncs;
    ASSERT_TRUE(db.Checkpoint().ok());
    // The ticket was covered by the checkpoint; no leader sync needed.
    ASSERT_TRUE(db.WaitDurable(ticket.value()).ok());
    EXPECT_EQ(db.storage_stats().wal_group_syncs, syncs_before);
  }
  Database reopened(GroupCommitOptions(dir));
  ASSERT_TRUE(reopened.storage_active());
  auto rows = reopened.Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().rows[0][0].AsInteger(), 1);
  std::filesystem::remove_all(dir);
}

// PolicyServer wiring: with storage_group_commit on, installs stay durable
// across reopen and the p3p_storage_wal_group_syncs_total counter moves.
TEST(GroupCommitTest, PolicyServerInstallsAreDurableUnderGroupCommit) {
  const std::string dir = TestDir("server");
  workload::CorpusOptions corpus_options;
  corpus_options.policy_count = 5;
  const std::vector<p3p::Policy> corpus =
      workload::FortuneCorpus(corpus_options);
  {
    PolicyServer::Options o;
    o.engine = EngineKind::kSql;
    o.storage_path = dir;
    o.storage_group_commit = true;
    auto server = PolicyServer::Create(o);
    ASSERT_TRUE(server.ok()) << server.status().message();
    for (const p3p::Policy& policy : corpus) {
      ASSERT_TRUE(server.value()->InstallPolicy(policy).ok());
    }
    ASSERT_TRUE(
        server.value()
            ->InstallReferenceFile(workload::CorpusReferenceFile(corpus))
            .ok());
    EXPECT_GE(server.value()->MetricsSnapshot().counters.at(
                  "p3p_storage_wal_group_syncs_total"),
              1u);
  }
  {
    PolicyServer::Options o;
    o.engine = EngineKind::kSql;
    o.storage_path = dir;
    o.storage_group_commit = true;
    auto server = PolicyServer::Create(o);
    ASSERT_TRUE(server.ok()) << server.status().message();
    EXPECT_EQ(server.value()->policy_ids().size(), corpus.size());
    auto pref = server.value()->CompilePreference(
        workload::JrcPreference(workload::PreferenceLevel::kMedium));
    ASSERT_TRUE(pref.ok());
    auto r = server.value()->MatchUri(
        pref.value(), "/" + corpus[0].name + "/index.html");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().policy_found);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace p3pdb::sqldb
