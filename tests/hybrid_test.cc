// Tests for the hybrid architecture (§4.2) and the cookie matching path
// (§5.5's COOKIE-INCLUDE/COOKIE-EXCLUDE).

#include <gtest/gtest.h>

#include "server/hybrid_client.h"
#include "server/policy_server.h"
#include "workload/paper_examples.h"

namespace p3pdb::server {
namespace {

using workload::JanePreference;
using workload::VolgaPolicy;
using workload::VolgaReferenceFile;

std::unique_ptr<PolicyServer> MakeSqlServer() {
  auto server = PolicyServer::Create({.engine = EngineKind::kSql});
  EXPECT_TRUE(server.ok()) << server.status();
  return std::move(server).value();
}

TEST(HybridClientTest, ResolvesLocallyAndMatchesRemotely) {
  auto server = MakeSqlServer();
  auto id = server->InstallPolicy(VolgaPolicy());
  ASSERT_TRUE(id.ok());
  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok());

  HybridClient client(server.get());
  ASSERT_TRUE(client.FetchReferenceFile(VolgaReferenceFile()).ok());

  auto result = client.Check(pref.value(), "/catalog/books");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().behavior, "request");
  EXPECT_EQ(result.value().policy_id, id.value());
  EXPECT_EQ(client.local_resolutions(), 1u);

  auto excluded = client.Check(pref.value(), "/about/team.html");
  ASSERT_TRUE(excluded.ok());
  EXPECT_FALSE(excluded.value().policy_found);
  EXPECT_EQ(client.local_resolutions(), 2u);
}

TEST(HybridClientTest, SkipsServerSideUriResolution) {
  auto server = MakeSqlServer();
  ASSERT_TRUE(server->InstallPolicy(VolgaPolicy()).ok());
  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok());
  HybridClient client(server.get());
  ASSERT_TRUE(client.FetchReferenceFile(VolgaReferenceFile()).ok());

  // The server never received InstallReferenceFile, so full-server MatchUri
  // fails while the hybrid path works — proof the resolution is local.
  EXPECT_FALSE(server->MatchUri(pref.value(), "/catalog").ok());
  auto result = client.Check(pref.value(), "/catalog");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().behavior, "request");
}

TEST(HybridClientTest, CheckBeforeFetchFails) {
  auto server = MakeSqlServer();
  ASSERT_TRUE(server->InstallPolicy(VolgaPolicy()).ok());
  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok());
  HybridClient client(server.get());
  EXPECT_FALSE(client.Check(pref.value(), "/x").ok());
}

TEST(HybridClientTest, UnresolvedAboutReportsNoPolicy) {
  auto server = MakeSqlServer();
  ASSERT_TRUE(server->InstallPolicy(VolgaPolicy()).ok());
  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok());
  HybridClient client(server.get());
  p3p::ReferenceFile rf;
  p3p::PolicyRef ref;
  ref.about = "/P3P/policies.xml#no-such-policy";
  ref.includes.push_back("/*");
  rf.refs.push_back(ref);
  ASSERT_TRUE(client.FetchReferenceFile(rf).ok());
  auto result = client.Check(pref.value(), "/anything");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.value().policy_found);
}

TEST(HybridClientTest, CookiePathUsesCookiePatterns) {
  auto server = MakeSqlServer();
  ASSERT_TRUE(server->InstallPolicy(VolgaPolicy()).ok());
  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok());
  HybridClient client(server.get());
  ASSERT_TRUE(client.FetchReferenceFile(VolgaReferenceFile()).ok());
  auto cookie = client.CheckCookie(pref.value(), "/session");
  ASSERT_TRUE(cookie.ok());
  EXPECT_TRUE(cookie.value().policy_found);
  EXPECT_EQ(cookie.value().behavior, "request");
}

TEST(PolicyServerCookieTest, MatchCookieAcrossEngines) {
  for (EngineKind kind :
       {EngineKind::kNativeAppel, EngineKind::kSql, EngineKind::kSqlSimple,
        EngineKind::kXQueryNative, EngineKind::kXQueryXTable}) {
    PolicyServer::Options options;
    options.engine = kind;
    options.augmentation = kind == EngineKind::kNativeAppel
                               ? Augmentation::kPerMatch
                               : Augmentation::kAtInstall;
    auto server = PolicyServer::Create(options);
    ASSERT_TRUE(server.ok()) << server.status();
    ASSERT_TRUE(server.value()->InstallPolicy(VolgaPolicy()).ok());
    ASSERT_TRUE(
        server.value()->InstallReferenceFile(VolgaReferenceFile()).ok());
    auto pref = server.value()->CompilePreference(JanePreference());
    ASSERT_TRUE(pref.ok()) << pref.status();

    auto cookie = server.value()->MatchCookie(pref.value(), "/session");
    ASSERT_TRUE(cookie.ok()) << EngineKindName(kind) << ": "
                             << cookie.status();
    EXPECT_EQ(cookie.value().behavior, "request") << EngineKindName(kind);

    // Page patterns must not leak into cookie resolution: the reference
    // file's INCLUDE covers /* but its COOKIE-INCLUDE does too, so probe a
    // file with a rf that lacks cookie patterns.
    p3p::ReferenceFile rf;
    p3p::PolicyRef ref;
    ref.about = "/P3P/policies.xml#volga";
    ref.includes.push_back("/*");
    rf.refs.push_back(ref);
    ASSERT_TRUE(server.value()->InstallReferenceFile(rf).ok());
    auto none = server.value()->MatchCookie(pref.value(), "/session");
    ASSERT_TRUE(none.ok()) << EngineKindName(kind);
    EXPECT_FALSE(none.value().policy_found) << EngineKindName(kind);
  }
}

}  // namespace
}  // namespace p3pdb::server
