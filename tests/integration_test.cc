// End-to-end integration tests: the paper's §2 walk-through (Volga's
// policy vs. Jane's preference) on every engine, reference-file routing,
// and cross-engine differential agreement on the full corpus x preference
// matrix — the core claim that a database engine computes exactly what the
// specialized APPEL engine computes.

#include <gtest/gtest.h>

#include "server/policy_server.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"

namespace p3pdb::server {
namespace {

using workload::AllPreferenceLevels;
using workload::FortuneCorpus;
using workload::JanePreference;
using workload::JrcPreference;
using workload::PreferenceLevelName;
using workload::VolgaPolicy;
using workload::VolgaReferenceFile;

constexpr EngineKind kAllEngines[] = {
    EngineKind::kNativeAppel, EngineKind::kSql, EngineKind::kSqlSimple,
    EngineKind::kXQueryNative, EngineKind::kXQueryXTable};

std::unique_ptr<PolicyServer> MakeServer(EngineKind engine) {
  PolicyServer::Options options;
  options.engine = engine;
  options.augmentation = engine == EngineKind::kNativeAppel
                             ? Augmentation::kPerMatch
                             : Augmentation::kAtInstall;
  auto server = PolicyServer::Create(options);
  EXPECT_TRUE(server.ok()) << server.status();
  return std::move(server).value();
}

class AllEnginesTest : public ::testing::TestWithParam<EngineKind> {};

INSTANTIATE_TEST_SUITE_P(Engines, AllEnginesTest,
                         ::testing::ValuesIn(kAllEngines),
                         [](const auto& info) {
                           std::string name = EngineKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(AllEnginesTest, VolgaConformsToJane) {
  auto server = MakeServer(GetParam());
  auto policy_id = server->InstallPolicy(VolgaPolicy());
  ASSERT_TRUE(policy_id.ok()) << policy_id.status();
  ASSERT_TRUE(server->InstallReferenceFile(VolgaReferenceFile()).ok());

  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok()) << pref.status();

  auto result = server->MatchUri(pref.value(), "/catalog/books");
  ASSERT_TRUE(result.ok()) << result.status();
  // The paper's §2.2 walk-through: neither block rule fires; the catch-all
  // requests the page.
  EXPECT_EQ(result.value().behavior, "request");
  EXPECT_EQ(result.value().fired_rule_index, 2);
  EXPECT_EQ(result.value().policy_id, policy_id.value());
}

TEST_P(AllEnginesTest, MandatoryProfilingIsBlocked) {
  // The paper's counterfactual: if individual-decision were not opt-in,
  // the default required="always" would make Jane's first rule fire.
  p3p::Policy policy = VolgaPolicy();
  for (auto& stmt : policy.statements) {
    for (auto& purpose : stmt.purposes) {
      purpose.required = p3p::Required::kAlways;
    }
  }
  auto server = MakeServer(GetParam());
  ASSERT_TRUE(server->InstallPolicy(policy).ok());
  ASSERT_TRUE(server->InstallReferenceFile(VolgaReferenceFile()).ok());
  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok()) << pref.status();
  auto result = server->MatchUri(pref.value(), "/catalog/books");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().behavior, "block");
  EXPECT_EQ(result.value().fired_rule_index, 0);
}

TEST_P(AllEnginesTest, LeakyRecipientsAreBlocked) {
  p3p::Policy policy = VolgaPolicy();
  policy.statements[0].recipients.push_back(
      p3p::RecipientItem{"unrelated", p3p::Required::kAlways});
  auto server = MakeServer(GetParam());
  ASSERT_TRUE(server->InstallPolicy(policy).ok());
  ASSERT_TRUE(server->InstallReferenceFile(VolgaReferenceFile()).ok());
  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok()) << pref.status();
  auto result = server->MatchUri(pref.value(), "/checkout");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().behavior, "block");
  EXPECT_EQ(result.value().fired_rule_index, 1);
}

TEST_P(AllEnginesTest, ExcludedUriHasNoPolicy) {
  auto server = MakeServer(GetParam());
  ASSERT_TRUE(server->InstallPolicy(VolgaPolicy()).ok());
  ASSERT_TRUE(server->InstallReferenceFile(VolgaReferenceFile()).ok());
  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok()) << pref.status();
  auto result = server->MatchUri(pref.value(), "/about/team.html");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result.value().policy_found);
  EXPECT_EQ(result.value().behavior, kNoPolicyBehavior);
}

TEST_P(AllEnginesTest, MatchPolicyIdDirectly) {
  auto server = MakeServer(GetParam());
  auto policy_id = server->InstallPolicy(VolgaPolicy());
  ASSERT_TRUE(policy_id.ok());
  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok()) << pref.status();
  auto result = server->MatchPolicyId(pref.value(), policy_id.value());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().behavior, "request");

  auto missing = server->MatchPolicyId(pref.value(), 99999);
  EXPECT_FALSE(missing.ok());
}

// The headline correctness claim: every engine computes the same outcome
// for every (policy, preference) pair of the paper's workload.
TEST(DifferentialTest, AllEnginesAgreeOnCorpusTimesPreferences) {
  std::vector<p3p::Policy> corpus = FortuneCorpus();
  ASSERT_EQ(corpus.size(), 29u);

  struct EngineFixture {
    EngineKind kind;
    std::unique_ptr<PolicyServer> server;
    std::vector<int64_t> policy_ids;
    std::vector<CompiledPreference> prefs;
  };
  std::vector<EngineFixture> fixtures;
  for (EngineKind kind : kAllEngines) {
    EngineFixture fx;
    fx.kind = kind;
    fx.server = MakeServer(kind);
    for (const p3p::Policy& policy : corpus) {
      auto id = fx.server->InstallPolicy(policy);
      ASSERT_TRUE(id.ok()) << EngineKindName(kind) << ": " << id.status();
      fx.policy_ids.push_back(id.value());
    }
    for (auto level : AllPreferenceLevels()) {
      auto pref = fx.server->CompilePreference(JrcPreference(level));
      ASSERT_TRUE(pref.ok()) << EngineKindName(kind) << " "
                             << PreferenceLevelName(level) << ": "
                             << pref.status();
      fx.prefs.push_back(std::move(pref).value());
    }
    fixtures.push_back(std::move(fx));
  }

  size_t disagreements = 0;
  for (size_t p = 0; p < corpus.size(); ++p) {
    for (size_t l = 0; l < AllPreferenceLevels().size(); ++l) {
      std::string reference_behavior;
      int reference_rule = -2;
      for (EngineFixture& fx : fixtures) {
        auto result =
            fx.server->MatchPolicyId(fx.prefs[l], fx.policy_ids[p]);
        ASSERT_TRUE(result.ok())
            << EngineKindName(fx.kind) << " policy " << p << ": "
            << result.status();
        if (reference_rule == -2) {
          reference_behavior = result.value().behavior;
          reference_rule = result.value().fired_rule_index;
        } else if (result.value().behavior != reference_behavior ||
                   result.value().fired_rule_index != reference_rule) {
          ++disagreements;
          ADD_FAILURE() << "engine " << EngineKindName(fx.kind)
                        << " disagrees on policy " << corpus[p].name
                        << " x preference "
                        << PreferenceLevelName(AllPreferenceLevels()[l])
                        << ": got " << result.value().behavior << "/rule "
                        << result.value().fired_rule_index << ", expected "
                        << reference_behavior << "/rule " << reference_rule;
        }
      }
    }
  }
  EXPECT_EQ(disagreements, 0u);
}

TEST_P(AllEnginesTest, CorpusReferenceFileRoutesEveryEngine) {
  // Full URI pipeline over the corpus reference file: every engine routes
  // /<name>/... to that policy and excludes the public archive.
  std::vector<p3p::Policy> corpus = FortuneCorpus();
  auto server = MakeServer(GetParam());
  std::map<std::string, int64_t> ids;
  for (const p3p::Policy& policy : corpus) {
    auto id = server->InstallPolicy(policy);
    ASSERT_TRUE(id.ok());
    ids[policy.name] = id.value();
  }
  ASSERT_TRUE(
      server->InstallReferenceFile(workload::CorpusReferenceFile(corpus))
          .ok());
  auto pref = server->CompilePreference(
      JrcPreference(workload::PreferenceLevel::kVeryLow));
  ASSERT_TRUE(pref.ok()) << pref.status();

  for (size_t i = 0; i < corpus.size(); i += 5) {
    const std::string& name = corpus[i].name;
    auto hit = server->MatchUri(pref.value(), "/" + name + "/page.html");
    ASSERT_TRUE(hit.ok()) << hit.status();
    EXPECT_EQ(hit.value().policy_id, ids[name]) << name;
    EXPECT_EQ(hit.value().behavior, "request");
    auto excluded = server->MatchUri(
        pref.value(), "/" + name + "/public-archive/old.html");
    ASSERT_TRUE(excluded.ok());
    EXPECT_FALSE(excluded.value().policy_found) << name;
  }
}

TEST(DifferentialTest, CorpusOutcomesAreNotTrivial) {
  // Guard against a vacuous differential test: across the matrix there must
  // be both blocks and requests.
  std::vector<p3p::Policy> corpus = FortuneCorpus();
  auto server = MakeServer(EngineKind::kSql);
  std::vector<int64_t> ids;
  for (const p3p::Policy& policy : corpus) {
    auto id = server->InstallPolicy(policy);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  size_t blocks = 0, requests = 0;
  for (auto level : AllPreferenceLevels()) {
    auto pref = server->CompilePreference(JrcPreference(level));
    ASSERT_TRUE(pref.ok());
    for (int64_t id : ids) {
      auto result = server->MatchPolicyId(pref.value(), id);
      ASSERT_TRUE(result.ok());
      if (result.value().behavior == "block") ++blocks;
      if (result.value().behavior == "request") ++requests;
    }
  }
  EXPECT_GT(blocks, 10u);
  EXPECT_GT(requests, 10u);
}

}  // namespace
}  // namespace p3pdb::server
