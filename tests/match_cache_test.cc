// MatchCache unit tests (LRU, sharding, versioned invalidation, counters)
// plus server-level invalidation: installs mid-stream must never let a
// stale cached result be served.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "server/match_cache.h"
#include "server/policy_server.h"
#include "workload/corpus.h"
#include "workload/paper_examples.h"

namespace p3pdb {
namespace {

using server::EngineKind;
using server::MatchCache;
using server::MatchCacheKey;
using server::MatchResult;
using server::MatchSubject;
using server::PolicyServer;

MatchCacheKey UriKey(uint64_t fingerprint, std::string path) {
  MatchCacheKey key;
  key.pref_fingerprint = fingerprint;
  key.subject = MatchSubject::kUri;
  key.path = std::move(path);
  key.engine = static_cast<uint8_t>(EngineKind::kSql);
  return key;
}

MatchResult SomeResult(const std::string& behavior, int64_t policy_id) {
  MatchResult result;
  result.behavior = behavior;
  result.policy_id = policy_id;
  result.fired_rule_index = 0;
  return result;
}

TEST(MatchCacheTest, MissThenInsertThenHit) {
  MatchCache cache({.shards = 2, .capacity_per_shard = 4}, nullptr);
  MatchCacheKey key = UriKey(42, "/a");
  EXPECT_FALSE(cache.Lookup(key, 1).has_value());
  cache.Insert(key, 1, SomeResult("request", 7));
  auto hit = cache.Lookup(key, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->behavior, "request");
  EXPECT_EQ(hit->policy_id, 7);

  MatchCache::Stats stats = cache.TotalStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(MatchCacheTest, DistinctKeyComponentsDoNotAlias) {
  MatchCache cache({.shards = 1, .capacity_per_shard = 16}, nullptr);
  MatchCacheKey base = UriKey(42, "/a");
  cache.Insert(base, 1, SomeResult("request", 1));

  MatchCacheKey other_pref = base;
  other_pref.pref_fingerprint = 43;
  MatchCacheKey other_path = base;
  other_path.path = "/b";
  MatchCacheKey other_engine = base;
  other_engine.engine = static_cast<uint8_t>(EngineKind::kNativeAppel);
  MatchCacheKey other_subject = base;
  other_subject.subject = MatchSubject::kCookie;

  EXPECT_FALSE(cache.Lookup(other_pref, 1).has_value());
  EXPECT_FALSE(cache.Lookup(other_path, 1).has_value());
  EXPECT_FALSE(cache.Lookup(other_engine, 1).has_value());
  EXPECT_FALSE(cache.Lookup(other_subject, 1).has_value());
  EXPECT_TRUE(cache.Lookup(base, 1).has_value());
}

TEST(MatchCacheTest, LruEvictsLeastRecentlyUsed) {
  MatchCache cache({.shards = 1, .capacity_per_shard = 2}, nullptr);
  MatchCacheKey a = UriKey(1, "/a");
  MatchCacheKey b = UriKey(1, "/b");
  MatchCacheKey c = UriKey(1, "/c");
  cache.Insert(a, 1, SomeResult("block", 1));
  cache.Insert(b, 1, SomeResult("block", 2));
  // Touch a so b becomes the LRU victim.
  EXPECT_TRUE(cache.Lookup(a, 1).has_value());
  cache.Insert(c, 1, SomeResult("block", 3));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(a, 1).has_value());
  EXPECT_TRUE(cache.Lookup(c, 1).has_value());
  EXPECT_FALSE(cache.Lookup(b, 1).has_value());
  EXPECT_EQ(cache.TotalStats().evictions, 1u);
}

TEST(MatchCacheTest, StaleVersionIsInvalidatedLazily) {
  MatchCache cache({.shards = 1, .capacity_per_shard = 4}, nullptr);
  MatchCacheKey key = UriKey(9, "/a");
  cache.Insert(key, 1, SomeResult("request", 5));

  // Same key, newer catalog version: the stale entry must not be served,
  // and the lookup frees its slot.
  EXPECT_FALSE(cache.Lookup(key, 2).has_value());
  MatchCache::Stats stats = cache.TotalStats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 0u);

  // Recomputed under the new version, it is cacheable again.
  cache.Insert(key, 2, SomeResult("limited", 6));
  auto hit = cache.Lookup(key, 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->behavior, "limited");
}

TEST(MatchCacheTest, InsertRestampsExistingKey) {
  MatchCache cache({.shards = 1, .capacity_per_shard = 4}, nullptr);
  MatchCacheKey key = UriKey(9, "/a");
  cache.Insert(key, 1, SomeResult("request", 5));
  cache.Insert(key, 2, SomeResult("limited", 6));
  EXPECT_EQ(cache.size(), 1u);
  auto hit = cache.Lookup(key, 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->behavior, "limited");
}

TEST(MatchCacheTest, ShardsPartitionKeysAndSumInTotals) {
  MatchCache cache({.shards = 4, .capacity_per_shard = 8}, nullptr);
  EXPECT_EQ(cache.shard_count(), 4u);
  std::vector<MatchCacheKey> keys;
  for (int i = 0; i < 32; ++i) {
    keys.push_back(UriKey(100 + i, "/p" + std::to_string(i)));
    cache.Insert(keys.back(), 1, SomeResult("block", i));
  }
  // Shard assignment is stable and in range.
  for (const MatchCacheKey& key : keys) {
    size_t shard = cache.ShardIndex(key);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, cache.ShardIndex(key));
  }
  for (const MatchCacheKey& key : keys) cache.Lookup(key, 1);

  uint64_t shard_hits = 0;
  size_t shard_entries = 0;
  for (size_t s = 0; s < cache.shard_count(); ++s) {
    shard_hits += cache.ShardStats(s).hits;
    shard_entries += cache.ShardStats(s).entries;
  }
  EXPECT_EQ(shard_hits, cache.TotalStats().hits);
  EXPECT_EQ(shard_entries, cache.size());
  EXPECT_EQ(cache.size(), cache.TotalStats().entries);
}

TEST(MatchCacheTest, ClearDropsEntriesKeepsCounters) {
  MatchCache cache({.shards = 2, .capacity_per_shard = 4}, nullptr);
  MatchCacheKey key = UriKey(1, "/a");
  cache.Insert(key, 1, SomeResult("block", 1));
  EXPECT_TRUE(cache.Lookup(key, 1).has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(key, 1).has_value());
  EXPECT_EQ(cache.TotalStats().hits, 1u);
  EXPECT_EQ(cache.TotalStats().misses, 1u);
}

TEST(MatchCacheTest, MirrorsCountersIntoRegistry) {
  obs::MetricsRegistry registry;
  MatchCache cache({.shards = 1, .capacity_per_shard = 1}, &registry);
  MatchCacheKey a = UriKey(1, "/a");
  MatchCacheKey b = UriKey(1, "/b");
  cache.Insert(a, 1, SomeResult("block", 1));
  cache.Lookup(a, 1);      // hit
  cache.Lookup(b, 1);      // miss
  cache.Insert(b, 1, SomeResult("block", 2));  // evicts a
  cache.Lookup(b, 2);      // stale -> invalidation + miss

  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("p3p_match_cache_hits_total"), 1u);
  EXPECT_EQ(snap.counters.at("p3p_match_cache_misses_total"), 2u);
  EXPECT_EQ(snap.counters.at("p3p_match_cache_evictions_total"), 1u);
  EXPECT_EQ(snap.counters.at("p3p_match_cache_invalidations_total"), 1u);
  EXPECT_EQ(snap.gauges.at("p3p_match_cache_entries"), 0);
}

// -- server-level invalidation ----------------------------------------------

Result<std::unique_ptr<PolicyServer>> MakeCachedServer(EngineKind kind) {
  PolicyServer::Options options;
  options.engine = kind;
  options.augmentation = kind == EngineKind::kNativeAppel
                             ? server::Augmentation::kPerMatch
                             : server::Augmentation::kAtInstall;
  return PolicyServer::Create(options);
}

MatchCache::Stats CacheStats(PolicyServer* server) {
  return server->match_cache()->TotalStats();
}

TEST(MatchCacheServerTest, PolicyReinstallMidStreamNeverServesStaleUriEntry) {
  // Native path: re-installing a name remaps URI resolution immediately, so
  // a cached pre-install result would be visibly wrong.
  auto server = MakeCachedServer(EngineKind::kNativeAppel);
  ASSERT_TRUE(server.ok()) << server.status();
  ASSERT_TRUE(server.value()->InstallPolicy(workload::VolgaPolicy()).ok());
  ASSERT_TRUE(server.value()
                  ->InstallReferenceFile(workload::VolgaReferenceFile())
                  .ok());
  auto pref = server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());

  uint64_t epoch_before = server.value()->catalog_epoch();
  auto r1 = server.value()->MatchUri(pref.value(), "/catalog/specials");
  auto r2 = server.value()->MatchUri(pref.value(), "/catalog/specials");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().policy_id, r1.value().policy_id);
  EXPECT_EQ(CacheStats(server.value().get()).hits, 1u);

  // v2 of the same policy name, mid-stream: a new id is minted and the
  // catalog epoch moves.
  auto v2_id = server.value()->InstallPolicy(workload::VolgaPolicy());
  ASSERT_TRUE(v2_id.ok());
  EXPECT_GT(server.value()->catalog_epoch(), epoch_before);

  MatchCache::Stats before = CacheStats(server.value().get());
  auto r3 = server.value()->MatchUri(pref.value(), "/catalog/specials");
  ASSERT_TRUE(r3.ok());
  // The stale entry (old policy id) was invalidated, not served: the match
  // resolved to the v2 id and the invalidation counter ticked.
  EXPECT_EQ(r3.value().policy_id, v2_id.value());
  EXPECT_NE(r3.value().policy_id, r1.value().policy_id);
  MatchCache::Stats after = CacheStats(server.value().get());
  EXPECT_EQ(after.invalidations, before.invalidations + 1);
  EXPECT_EQ(after.hits, before.hits);

  // The recomputed v2 result is memoized in turn.
  auto r4 = server.value()->MatchUri(pref.value(), "/catalog/specials");
  ASSERT_TRUE(r4.ok());
  EXPECT_EQ(r4.value().policy_id, v2_id.value());
  EXPECT_EQ(CacheStats(server.value().get()).hits, after.hits + 1);
}

TEST(MatchCacheServerTest, ReferenceFileRemapInvalidatesUriAndCookieEntries) {
  // SQL path: InstallReferenceFile re-shreds the Include/Exclude tables, so
  // path -> policy resolution changes wholesale.
  auto server = MakeCachedServer(EngineKind::kSql);
  ASSERT_TRUE(server.ok()) << server.status();
  std::vector<p3p::Policy> corpus =
      workload::FortuneCorpus({.seed = 11, .policy_count = 2});
  auto id_a = server.value()->InstallPolicy(corpus[0]);
  auto id_b = server.value()->InstallPolicy(corpus[1]);
  ASSERT_TRUE(id_a.ok());
  ASSERT_TRUE(id_b.ok());

  auto make_rf = [&](const std::string& name) {
    p3p::ReferenceFile rf;
    p3p::PolicyRef ref;
    ref.about = "/P3P/policies.xml#" + name;
    ref.includes.push_back("/site/*");
    ref.cookie_includes.push_back("/site/*");
    rf.refs.push_back(ref);
    return rf;
  };
  ASSERT_TRUE(
      server.value()->InstallReferenceFile(make_rf(corpus[0].name)).ok());
  auto pref = server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());

  auto uri1 = server.value()->MatchUri(pref.value(), "/site/index.html");
  auto cookie1 = server.value()->MatchCookie(pref.value(), "/site/index.html");
  ASSERT_TRUE(uri1.ok());
  ASSERT_TRUE(cookie1.ok());
  EXPECT_EQ(uri1.value().policy_id, id_a.value());
  EXPECT_EQ(cookie1.value().policy_id, id_a.value());
  // Warm them.
  ASSERT_TRUE(server.value()->MatchUri(pref.value(), "/site/index.html").ok());
  ASSERT_TRUE(
      server.value()->MatchCookie(pref.value(), "/site/index.html").ok());
  EXPECT_EQ(CacheStats(server.value().get()).hits, 2u);

  // Remap the same paths to the other policy.
  ASSERT_TRUE(
      server.value()->InstallReferenceFile(make_rf(corpus[1].name)).ok());

  MatchCache::Stats before = CacheStats(server.value().get());
  auto uri2 = server.value()->MatchUri(pref.value(), "/site/index.html");
  auto cookie2 = server.value()->MatchCookie(pref.value(), "/site/index.html");
  ASSERT_TRUE(uri2.ok());
  ASSERT_TRUE(cookie2.ok());
  EXPECT_EQ(uri2.value().policy_id, id_b.value());
  EXPECT_EQ(cookie2.value().policy_id, id_b.value());
  MatchCache::Stats after = CacheStats(server.value().get());
  EXPECT_EQ(after.invalidations, before.invalidations + 2);
  EXPECT_EQ(after.hits, before.hits);
}

TEST(MatchCacheServerTest, PolicyIdEntriesSurviveUnrelatedInstalls) {
  // MatchPolicyId targets an immutable id, so its cache entries stay valid
  // across installs (only URI/cookie resolution is epoch-stamped).
  auto server = MakeCachedServer(EngineKind::kSql);
  ASSERT_TRUE(server.ok()) << server.status();
  auto id = server.value()->InstallPolicy(workload::VolgaPolicy());
  ASSERT_TRUE(id.ok());
  auto pref = server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());

  auto r1 = server.value()->MatchPolicyId(pref.value(), id.value());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(server.value()
                  ->InstallPolicy(workload::FortuneCorpus(
                      {.seed = 3, .policy_count = 1})[0])
                  .ok());
  MatchCache::Stats before = CacheStats(server.value().get());
  auto r2 = server.value()->MatchPolicyId(pref.value(), id.value());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().behavior, r1.value().behavior);
  MatchCache::Stats after = CacheStats(server.value().get());
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.invalidations, before.invalidations);
}

TEST(MatchCacheServerTest, DisabledOptionAndLegacyModeBypassTheCache) {
  PolicyServer::Options off;
  off.engine = EngineKind::kSql;
  off.enable_match_cache = false;
  auto disabled = PolicyServer::Create(off);
  ASSERT_TRUE(disabled.ok());
  EXPECT_EQ(disabled.value()->match_cache(), nullptr);

  PolicyServer::Options legacy;
  legacy.engine = EngineKind::kSql;
  legacy.materialize_applicable_policy = true;  // exclusive-lock match path
  auto materialized = PolicyServer::Create(legacy);
  ASSERT_TRUE(materialized.ok());
  EXPECT_EQ(materialized.value()->match_cache(), nullptr);

  PolicyServer::Options xtable;
  xtable.engine = EngineKind::kXQueryXTable;  // always materializes
  auto xtable_server = PolicyServer::Create(xtable);
  ASSERT_TRUE(xtable_server.ok());
  EXPECT_EQ(xtable_server.value()->match_cache(), nullptr);
}

TEST(MatchCacheServerTest, HandAssembledPreferenceBypassesCacheSafely) {
  // A CompiledPreference built without CompilePreference has fingerprint 0;
  // such matches must work and must not populate the cache (no aliasing).
  auto server = MakeCachedServer(EngineKind::kNativeAppel);
  ASSERT_TRUE(server.ok());
  auto id = server.value()->InstallPolicy(workload::VolgaPolicy());
  ASSERT_TRUE(id.ok());
  auto compiled = server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(compiled.ok());
  server::CompiledPreference hand = std::move(compiled).value();
  hand.fingerprint = 0;

  auto r1 = server.value()->MatchPolicyId(hand, id.value());
  auto r2 = server.value()->MatchPolicyId(hand, id.value());
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().behavior, r2.value().behavior);
  MatchCache::Stats stats = CacheStats(server.value().get());
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

}  // namespace
}  // namespace p3pdb
