// The parameterized match path: the generated rule queries take the
// applicable policy id as a bind parameter, so (a) their results are
// identical to the legacy materialized-ApplicablePolicy queries, and
// (b) a match with record_matches off mutates no table at all.

#include <gtest/gtest.h>

#include "server/policy_server.h"
#include "translator/sql_optimized.h"
#include "translator/sql_simple.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"

namespace p3pdb::server {
namespace {

using sqldb::QueryResult;
using sqldb::Value;
using workload::JrcPreference;
using workload::PreferenceLevel;

Result<std::unique_ptr<PolicyServer>> CorpusServer(
    EngineKind engine, bool materialize,
    const std::vector<p3p::Policy>& corpus, std::vector<int64_t>* ids) {
  PolicyServer::Options options;
  options.engine = engine;
  options.materialize_applicable_policy = materialize;
  P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<PolicyServer> server,
                         PolicyServer::Create(options));
  for (const p3p::Policy& policy : corpus) {
    P3PDB_ASSIGN_OR_RETURN(int64_t id, server->InstallPolicy(policy));
    ids->push_back(id);
  }
  P3PDB_RETURN_IF_ERROR(
      server->InstallReferenceFile(workload::CorpusReferenceFile(corpus)));
  return server;
}

// The tentpole's correctness anchor: for every engine, preference level,
// and policy, the parameterized (read-only) match and the legacy
// materialized match agree on behavior and fired rule.
TEST(MatchReadonlyTest, ParameterizedMatchesEqualLegacyMaterialized) {
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  for (EngineKind engine : {EngineKind::kSql, EngineKind::kSqlSimple}) {
    std::vector<int64_t> param_ids, legacy_ids;
    auto param_server =
        CorpusServer(engine, /*materialize=*/false, corpus, &param_ids);
    ASSERT_TRUE(param_server.ok()) << param_server.status();
    auto legacy_server =
        CorpusServer(engine, /*materialize=*/true, corpus, &legacy_ids);
    ASSERT_TRUE(legacy_server.ok()) << legacy_server.status();
    ASSERT_EQ(param_ids, legacy_ids);

    for (PreferenceLevel level : workload::AllPreferenceLevels()) {
      auto param_pref =
          param_server.value()->CompilePreference(JrcPreference(level));
      ASSERT_TRUE(param_pref.ok()) << param_pref.status();
      auto legacy_pref =
          legacy_server.value()->CompilePreference(JrcPreference(level));
      ASSERT_TRUE(legacy_pref.ok()) << legacy_pref.status();
      for (size_t i = 0; i < param_ids.size(); ++i) {
        auto p = param_server.value()->MatchPolicyId(param_pref.value(),
                                                     param_ids[i]);
        ASSERT_TRUE(p.ok()) << p.status();
        auto l = legacy_server.value()->MatchPolicyId(legacy_pref.value(),
                                                      legacy_ids[i]);
        ASSERT_TRUE(l.ok()) << l.status();
        EXPECT_EQ(p.value().behavior, l.value().behavior);
        EXPECT_EQ(p.value().fired_rule_index, l.value().fired_rule_index);
      }
    }
  }
}

// PreparedStatement::Execute with params returns exactly the rows of the
// literal (legacy) translation, for both the Figure 11 and the Figure 15
// translators, against the same materialized database state.
TEST(MatchReadonlyTest, PreparedWithParamsMatchesLiteralQueryRows) {
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  for (EngineKind engine : {EngineKind::kSqlSimple, EngineKind::kSql}) {
    std::vector<int64_t> ids;
    auto server = CorpusServer(engine, /*materialize=*/true, corpus, &ids);
    ASSERT_TRUE(server.ok()) << server.status();
    const appel::AppelRule rule = workload::JaneSimplifiedFirstRule();

    std::string literal_sql, param_sql;
    if (engine == EngineKind::kSqlSimple) {
      auto lit = translator::SimpleSqlTranslator().TranslateRule(rule);
      ASSERT_TRUE(lit.ok()) << lit.status();
      auto par = translator::SimpleSqlTranslator(/*parameterized=*/true)
                     .TranslateRule(rule);
      ASSERT_TRUE(par.ok()) << par.status();
      literal_sql = lit.value();
      param_sql = par.value();
    } else {
      auto lit = translator::OptimizedSqlTranslator().TranslateRule(rule);
      ASSERT_TRUE(lit.ok()) << lit.status();
      auto par = translator::OptimizedSqlTranslator(/*parameterized=*/true)
                     .TranslateRule(rule);
      ASSERT_TRUE(par.ok()) << par.status();
      literal_sql = lit.value();
      param_sql = par.value();
    }

    auto pref = server.value()->CompilePreference(
        JrcPreference(PreferenceLevel::kHigh));
    ASSERT_TRUE(pref.ok());
    auto prepared = server.value()->database()->Prepare(param_sql);
    ASSERT_TRUE(prepared.ok()) << prepared.status();
    ASSERT_EQ(prepared.value().param_count(), 1u);

    int fired = 0;
    for (int64_t id : ids) {
      // A legacy-mode match leaves ApplicablePolicy materialized to `id`,
      // the state the literal query reads.
      ASSERT_TRUE(server.value()->MatchPolicyId(pref.value(), id).ok());
      auto literal = server.value()->database()->Execute(literal_sql);
      ASSERT_TRUE(literal.ok()) << literal.status();
      auto bound = prepared.value().Execute({Value::Integer(id)});
      ASSERT_TRUE(bound.ok()) << bound.status();
      ASSERT_EQ(literal.value().rows.size(), bound.value().rows.size());
      for (size_t r = 0; r < literal.value().rows.size(); ++r) {
        EXPECT_EQ(literal.value().rows[r], bound.value().rows[r]);
      }
      if (!bound.value().rows.empty()) ++fired;
    }
    // Guard against a vacuously-passing comparison: the Jane rule must
    // fire against some of the corpus and stay silent against some.
    EXPECT_GT(fired, 0);
    EXPECT_LT(fired, static_cast<int>(ids.size()));
  }
}

// Acceptance criterion of the read-only path: with record_matches off, a
// match changes no table — neither live row counts nor tombstones.
TEST(MatchReadonlyTest, MatchMutatesNoTableWhenNotRecording) {
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  for (EngineKind engine : {EngineKind::kSql, EngineKind::kSqlSimple}) {
    std::vector<int64_t> ids;
    auto server = CorpusServer(engine, /*materialize=*/false, corpus, &ids);
    ASSERT_TRUE(server.ok()) << server.status();
    auto pref = server.value()->CompilePreference(
        JrcPreference(PreferenceLevel::kHigh));
    ASSERT_TRUE(pref.ok());

    sqldb::Database* db = server.value()->database();
    auto table_state = [db] {
      std::vector<std::pair<std::string, std::pair<size_t, size_t>>> state;
      for (const std::string& name : db->TableNames()) {
        const sqldb::Table* table = db->LookupTable(name);
        size_t live = 0;
        for (size_t slot = 0; slot < table->SlotCount(); ++slot) {
          if (table->IsLive(slot)) ++live;
        }
        state.emplace_back(name, std::make_pair(table->SlotCount(), live));
      }
      return state;
    };

    const auto before = table_state();
    for (int64_t id : ids) {
      ASSERT_TRUE(server.value()->MatchPolicyId(pref.value(), id).ok());
    }
    for (const p3p::Policy& policy : corpus) {
      ASSERT_TRUE(server.value()
                      ->MatchUri(pref.value(), "/" + policy.name + "/x")
                      .ok());
    }
    EXPECT_EQ(table_state(), before);
  }
}

// The legacy compatibility flag keeps the old behavior observable: the
// materialized mode rewrites the ApplicablePolicy row per match.
TEST(MatchReadonlyTest, LegacyModeStillMaterializes) {
  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  std::vector<int64_t> ids;
  auto server =
      CorpusServer(EngineKind::kSql, /*materialize=*/true, corpus, &ids);
  ASSERT_TRUE(server.ok()) << server.status();
  auto pref = server.value()->CompilePreference(
      JrcPreference(PreferenceLevel::kLow));
  ASSERT_TRUE(pref.ok());
  ASSERT_TRUE(server.value()->MatchPolicyId(pref.value(), ids[2]).ok());
  auto row = server.value()->database()->Execute(
      "SELECT policy_id FROM ApplicablePolicy");
  ASSERT_TRUE(row.ok());
  ASSERT_EQ(row.value().rows.size(), 1u);
  EXPECT_EQ(row.value().rows[0][0].AsInteger(), ids[2]);
}

}  // namespace
}  // namespace p3pdb::server
