// Cross-cutting coverage: parser surface for UPDATE/EXPLAIN, XML mixed
// content, APPEL serialization round-trips with every connective, the
// prepared-statement server mode, and random-preference well-formedness.

#include <gtest/gtest.h>

#include "appel/model.h"
#include "common/random.h"
#include "common/string_util.h"
#include "server/policy_server.h"
#include "sqldb/parser.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"
#include "workload/random_preferences.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace p3pdb {
namespace {

TEST(ParserSurfaceTest, UpdateStatement) {
  auto stmt = sqldb::ParseStatement(
      "UPDATE t SET a = 1, b = 'x' WHERE c IS NULL");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& update = static_cast<const sqldb::UpdateStmt&>(*stmt.value());
  EXPECT_EQ(update.table_name, "t");
  ASSERT_EQ(update.assignments.size(), 2u);
  EXPECT_EQ(update.assignments[0].column, "a");
  ASSERT_NE(update.where, nullptr);
  EXPECT_FALSE(sqldb::ParseStatement("UPDATE t SET").ok());
  EXPECT_FALSE(sqldb::ParseStatement("UPDATE t a = 1").ok());
  EXPECT_FALSE(sqldb::ParseStatement("UPDATE SET a = 1").ok());
}

TEST(ParserSurfaceTest, ExplainStatement) {
  auto stmt = sqldb::ParseStatement("EXPLAIN SELECT 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt.value()->kind, sqldb::StatementKind::kExplain);
  EXPECT_FALSE(sqldb::ParseStatement("EXPLAIN DELETE FROM t").ok());
}

TEST(ParserSurfaceTest, LikeEscapeClause) {
  auto stmt = sqldb::ParseStatement(
      "SELECT 1 FROM t WHERE a LIKE '10\\%' ESCAPE '\\'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& select = static_cast<const sqldb::SelectStmt&>(*stmt.value());
  const auto& like = static_cast<const sqldb::LikeExpr&>(*select.where);
  EXPECT_EQ(like.escape_char, '\\');
  // ToSql round-trips the ESCAPE clause.
  EXPECT_NE(select.ToSql().find("ESCAPE"), std::string::npos);
  EXPECT_FALSE(
      sqldb::ParseStatement("SELECT 1 FROM t WHERE a LIKE 'x' ESCAPE 'ab'")
          .ok());
}

TEST(XmlMixedContentTest, TextAroundChildrenIsConcatenated) {
  auto doc = xml::Parse("<c>We collect <b>name</b> and address.</c>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc.value().root->text(), "We collect  and address.");
  ASSERT_EQ(doc.value().root->ChildCount(), 1u);
  EXPECT_EQ(doc.value().root->children()[0]->text(), "name");
}

TEST(XmlMixedContentTest, WriterHandlesTextPlusChildren) {
  xml::Element root("t");
  root.set_text("hello");
  root.AddChild("child");
  std::string out = xml::Write(root, {.indent = true, .prolog = false});
  auto again = xml::Parse(out);
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << out;
  EXPECT_EQ(p3pdb::Trim(again.value().root->text()), "hello");
  EXPECT_EQ(again.value().root->ChildCount(), 1u);
}

TEST(AppelRoundTripTest, EveryConnectiveSurvivesSerialization) {
  using appel::Connective;
  for (Connective c :
       {Connective::kAnd, Connective::kOr, Connective::kNonAnd,
        Connective::kNonOr, Connective::kAndExact, Connective::kOrExact}) {
    appel::AppelRuleset rs;
    appel::AppelRule rule;
    rule.behavior = "block";
    rule.description = "why this rule exists";
    appel::AppelExpr purpose;
    purpose.name = "PURPOSE";
    purpose.connective = c;
    appel::AppelExpr v;
    v.name = "telemarketing";
    purpose.children.push_back(std::move(v));
    appel::AppelExpr statement;
    statement.name = "STATEMENT";
    statement.children.push_back(std::move(purpose));
    appel::AppelExpr policy;
    policy.name = "POLICY";
    policy.children.push_back(std::move(statement));
    rule.expressions.push_back(std::move(policy));
    rs.rules.push_back(std::move(rule));
    appel::AppelRule catch_all;
    catch_all.behavior = "request";
    rs.rules.push_back(std::move(catch_all));

    auto parsed = appel::RulesetFromText(appel::RulesetToText(rs));
    ASSERT_TRUE(parsed.ok()) << appel::ConnectiveToString(c) << ": "
                             << parsed.status();
    const appel::AppelExpr& round =
        parsed.value().rules[0].expressions[0].children[0].children[0];
    EXPECT_EQ(round.connective, c) << appel::ConnectiveToString(c);
    EXPECT_EQ(parsed.value().rules[0].description, "why this rule exists");
  }
}

TEST(PreparedServerTest, SameOutcomesAsTextSubmission) {
  server::PolicyServer::Options text_options;
  text_options.engine = server::EngineKind::kSql;
  server::PolicyServer::Options prepared_options = text_options;
  prepared_options.use_prepared_statements = true;

  auto text_server = server::PolicyServer::Create(text_options);
  auto prepared_server = server::PolicyServer::Create(prepared_options);
  ASSERT_TRUE(text_server.ok());
  ASSERT_TRUE(prepared_server.ok());

  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  std::vector<int64_t> text_ids, prepared_ids;
  for (const p3p::Policy& policy : corpus) {
    auto a = text_server.value()->InstallPolicy(policy);
    auto b = prepared_server.value()->InstallPolicy(policy);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    text_ids.push_back(a.value());
    prepared_ids.push_back(b.value());
  }
  for (auto level : workload::AllPreferenceLevels()) {
    auto a = text_server.value()->CompilePreference(
        workload::JrcPreference(level));
    auto b = prepared_server.value()->CompilePreference(
        workload::JrcPreference(level));
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_FALSE(b.value().prepared_sql.empty());
    for (size_t p = 0; p < corpus.size(); ++p) {
      auto ra = text_server.value()->MatchPolicyId(a.value(), text_ids[p]);
      auto rb =
          prepared_server.value()->MatchPolicyId(b.value(), prepared_ids[p]);
      ASSERT_TRUE(ra.ok());
      ASSERT_TRUE(rb.ok());
      EXPECT_EQ(ra.value().behavior, rb.value().behavior) << corpus[p].name;
      EXPECT_EQ(ra.value().fired_rule_index, rb.value().fired_rule_index);
    }
  }
}

TEST(OtherwiseTest, NestedInsideFinalRuleAsInFigure2) {
  // The paper's Figure 2 shows <appel:OTHERWISE/> nested inside the final
  // request rule; the marker is consumed and the rule becomes a catch-all.
  auto parsed = appel::RulesetFromText(
      "<appel:RULESET xmlns:appel=\"http://www.w3.org/2002/04/APPELv1\">"
      "<appel:RULE behavior=\"request\"><appel:OTHERWISE/></appel:RULE>"
      "</appel:RULESET>");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed.value().RuleCount(), 1u);
  EXPECT_TRUE(parsed.value().rules[0].IsCatchAll());
  EXPECT_EQ(parsed.value().rules[0].behavior, "request");
}

TEST(OtherwiseTest, BareAtRulesetLevel) {
  auto parsed = appel::RulesetFromText(
      "<appel:RULESET><appel:RULE behavior=\"block\"><POLICY/></appel:RULE>"
      "<appel:OTHERWISE/></appel:RULESET>");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed.value().RuleCount(), 2u);
  EXPECT_TRUE(parsed.value().rules[1].IsCatchAll());
  EXPECT_EQ(parsed.value().rules[1].behavior, "request");
}

TEST(RandomPreferenceTest, GeneratedRulesetsAreWellFormed) {
  Random rng(20030704);
  workload::RandomPreferenceOptions options;
  options.allow_exact_connectives = true;
  for (int i = 0; i < 50; ++i) {
    appel::AppelRuleset rs = workload::RandomPreference(&rng, options);
    ASSERT_TRUE(rs.Validate().ok());
    ASSERT_GE(rs.RuleCount(), 2u);
    EXPECT_TRUE(rs.rules.back().IsCatchAll());
    // Serialization round-trip preserves structure.
    auto parsed = appel::RulesetFromText(appel::RulesetToText(rs));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed.value().ExpressionCount(), rs.ExpressionCount());
  }
}

}  // namespace
}  // namespace p3pdb
