// Tests for the observability subsystem: histogram bucket boundaries and
// percentile math (pure integer arithmetic, fully deterministic), the
// metrics registry's render formats, and trace span nesting/rendering.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace p3pdb::obs {
namespace {

// -- histogram buckets -------------------------------------------------------

TEST(HistogramBucketsTest, BoundariesArePowersOfTwo) {
  EXPECT_EQ(HistogramBucketUpperBound(0), 1u);
  EXPECT_EQ(HistogramBucketUpperBound(1), 2u);
  EXPECT_EQ(HistogramBucketUpperBound(2), 4u);
  EXPECT_EQ(HistogramBucketUpperBound(10), 1024u);
}

TEST(HistogramBucketsTest, IndexMatchesBoundaryDefinition) {
  // Bucket 0 covers [0, 1]; bucket i covers (2^(i-1), 2^i].
  EXPECT_EQ(HistogramBucketIndex(0), 0u);
  EXPECT_EQ(HistogramBucketIndex(1), 0u);
  EXPECT_EQ(HistogramBucketIndex(2), 1u);
  EXPECT_EQ(HistogramBucketIndex(3), 2u);
  EXPECT_EQ(HistogramBucketIndex(4), 2u);
  EXPECT_EQ(HistogramBucketIndex(5), 3u);
  EXPECT_EQ(HistogramBucketIndex(1024), 10u);
  EXPECT_EQ(HistogramBucketIndex(1025), 11u);
}

TEST(HistogramBucketsTest, EveryValueLandsInItsOwnBucketRange) {
  for (uint64_t v : {0ull, 1ull, 2ull, 7ull, 100ull, 4096ull, 999999ull}) {
    size_t i = HistogramBucketIndex(v);
    EXPECT_LE(v, HistogramBucketUpperBound(i)) << v;
    if (i > 0) {
      EXPECT_GT(v, HistogramBucketUpperBound(i - 1)) << v;
    }
  }
}

TEST(HistogramBucketsTest, HugeValuesClampToLastBucket) {
  EXPECT_EQ(HistogramBucketIndex(~0ull), kHistogramBuckets - 1);
}

// -- percentile math ---------------------------------------------------------

TEST(HistogramPercentileTest, EmptyIsZero) {
  HistogramSnapshot snap;
  EXPECT_EQ(snap.Percentile(50.0), 0.0);
  EXPECT_EQ(snap.Average(), 0.0);
}

TEST(HistogramPercentileTest, SingleBucketReturnsItsBoundary) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(5);  // bucket (4,8] -> boundary 8
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.sum, 500u);
  EXPECT_EQ(snap.Percentile(50.0), 8.0);
  EXPECT_EQ(snap.Percentile(99.0), 8.0);
}

TEST(HistogramPercentileTest, SplitDistribution) {
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(1);    // bucket [0,1]
  for (int i = 0; i < 50; ++i) h.Record(100);  // bucket (64,128]
  HistogramSnapshot snap = h.Snapshot();
  // Nearest-rank: p50 -> rank 50 (still in the first bucket), p90/p99 in
  // the second.
  EXPECT_EQ(snap.Percentile(50.0), 1.0);
  EXPECT_EQ(snap.Percentile(90.0), 128.0);
  EXPECT_EQ(snap.Percentile(99.0), 128.0);
}

// -- registry and rendering --------------------------------------------------

TEST(MetricsRegistryTest, InstrumentsAreStableAndNamed) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("requests_total");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(registry.GetCounter("requests_total"), c);  // same instrument
  registry.GetGauge("queue_depth")->Set(7);
  registry.GetHistogram("latency_us")->Record(3);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("requests_total"), 5u);
  EXPECT_EQ(snap.gauges.at("queue_depth"), 7);
  EXPECT_EQ(snap.histograms.at("latency_us").count, 1u);
}

TEST(MetricsRegistryTest, RenderTextIsPrometheusShaped) {
  MetricsRegistry registry;
  registry.GetCounter("hits_total")->Increment(3);
  registry.GetHistogram("latency_us")->Record(5);
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("# TYPE hits_total counter"), std::string::npos)
      << text;
  EXPECT_NE(text.find("hits_total 3"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE latency_us histogram"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_bucket{le=\"8\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_bucket{le=\"+Inf\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_sum 5"), std::string::npos) << text;
  EXPECT_NE(text.find("latency_us_count 1"), std::string::npos) << text;
  EXPECT_NE(text.find("latency_us{quantile=\"0.50\"} 8.0"),
            std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, RenderJsonCarriesTheSameNumbers) {
  MetricsRegistry registry;
  registry.GetCounter("hits_total")->Increment(3);
  registry.GetGauge("depth")->Set(-2);
  registry.GetHistogram("latency_us")->Record(5);
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"hits_total\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\": -2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\": 8.0"), std::string::npos) << json;
}

TEST(MetricsRegistryTest, ConcurrentRecordingLosesNothing) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("ops_total");
  Histogram* h = registry.GetHistogram("latency_us");
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        c->Increment();
        h->Record(static_cast<uint64_t>(i % 7));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c->value(), uint64_t{kThreads} * kOpsPerThread);
  HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, uint64_t{kThreads} * kOpsPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
}

// -- exposition edge cases ---------------------------------------------------

TEST(SanitizeMetricNameTest, PassesThroughValidNames) {
  EXPECT_EQ(SanitizeMetricName("p3p_matches_total"), "p3p_matches_total");
  EXPECT_EQ(SanitizeMetricName("ns:subsystem_metric"),
            "ns:subsystem_metric");
}

TEST(SanitizeMetricNameTest, ReplacesInvalidCharacters) {
  EXPECT_EQ(SanitizeMetricName("latency.us"), "latency_us");
  EXPECT_EQ(SanitizeMetricName("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(SanitizeMetricName("héllo"), "h__llo");  // multi-byte UTF-8
}

TEST(SanitizeMetricNameTest, LeadingDigitGetsPrefixed) {
  EXPECT_EQ(SanitizeMetricName("2xx_total"), "_2xx_total");
  EXPECT_EQ(SanitizeMetricName(""), "_");
}

TEST(SanitizeMetricNameTest, RegistryAppliesSanitizationOnLookup) {
  // "latency.us" and "latency_us" are the same instrument after
  // sanitization — a scrape must never see an invalid name.
  MetricsRegistry registry;
  Counter* dotted = registry.GetCounter("latency.us_total");
  EXPECT_EQ(registry.GetCounter("latency_us_total"), dotted);
  dotted->Increment();
  EXPECT_NE(registry.RenderText().find("latency_us_total 1"),
            std::string::npos);
}

TEST(MetricsRegistryTest, EmptyHistogramStillRendersBucketsAndSum) {
  MetricsRegistry registry;
  registry.GetHistogram("idle_us");
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("idle_us_bucket{le=\"+Inf\"} 0"), std::string::npos)
      << text;
  EXPECT_NE(text.find("idle_us_sum 0"), std::string::npos) << text;
  EXPECT_NE(text.find("idle_us_count 0"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, HistogramBucketCountsAreCumulative) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("latency_us");
  h->Record(1);    // bucket le="1"
  h->Record(5);    // bucket le="8"
  h->Record(5);
  const std::string text = registry.RenderText();
  // Prometheus buckets are cumulative: le="8" includes the le="1" sample.
  EXPECT_NE(text.find("latency_us_bucket{le=\"1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_bucket{le=\"8\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_bucket{le=\"+Inf\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("latency_us_sum 11"), std::string::npos) << text;
  EXPECT_NE(text.find("latency_us_count 3"), std::string::npos) << text;
}

TEST(MetricsRegistryTest, InfoRendersOnceWithEscapedLabels) {
  MetricsRegistry registry;
  registry.SetInfo("p3p_build_info", {{"git_sha", "abc123"},
                                      {"note", "a\"quote\" and \\slash\\"}});
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# TYPE p3p_build_info gauge"), std::string::npos)
      << text;
  EXPECT_NE(
      text.find("p3p_build_info{git_sha=\"abc123\",note=\"a\\\"quote\\\" "
                "and \\\\slash\\\\\"} 1"),
      std::string::npos)
      << text;
  // Re-setting replaces, not duplicates.
  registry.SetInfo("p3p_build_info", {{"git_sha", "def456"}});
  const std::string again = registry.RenderText();
  EXPECT_EQ(again.find("abc123"), std::string::npos) << again;
  EXPECT_NE(again.find("def456"), std::string::npos) << again;
  // Snapshot carries the labels too.
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.infos.count("p3p_build_info"), 1u);
  EXPECT_EQ(snap.infos.at("p3p_build_info")[0].second, "def456");
}

TEST(MetricsRegistryTest, NoInfosMeansNoInfoLines) {
  MetricsRegistry registry;
  registry.GetCounter("hits_total")->Increment();
  EXPECT_EQ(registry.RenderText().find("_info"), std::string::npos);
  EXPECT_EQ(registry.RenderJson().find("\"infos\""), std::string::npos);
}

TEST(MetricsRegistryTest, SnapshotIsConsistentUnderConcurrentChurn) {
  // Writers hammer counters/histograms/infos while readers snapshot and
  // render; run under TSan in CI. Invariant checked on every snapshot: the
  // histogram's bucket total equals its count (both captured together).
  MetricsRegistry registry;
  Counter* ops = registry.GetCounter("ops_total");
  Histogram* lat = registry.GetHistogram("lat_us");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ops->Increment();
        lat->Record(i++ % 100);
        if (i % 64 == 0) {
          registry.SetInfo("p3p_build_info",
                           {{"git_sha", t % 2 == 0 ? "aaa" : "bbb"}});
        }
      }
    });
  }
  for (int r = 0; r < 50; ++r) {
    // Under churn the relaxed counters drift between individual loads, so
    // no numeric invariant holds mid-flight; the point of this loop is
    // that snapshotting and rendering race the writers (TSan verifies no
    // data race) and never crash or produce empty output.
    MetricsSnapshot snap = registry.Snapshot();
    EXPECT_EQ(snap.histograms.count("lat_us"), 1u);
    EXPECT_FALSE(registry.RenderText().empty());
    EXPECT_FALSE(registry.RenderJson().empty());
  }
  stop.store(true);
  for (auto& w : writers) w.join();

  // Quiesced: totals must agree exactly.
  MetricsSnapshot snap = registry.Snapshot();
  const HistogramSnapshot& h = snap.histograms.at("lat_us");
  uint64_t bucket_total = 0;
  for (uint64_t b : h.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count);
  EXPECT_EQ(snap.counters.at("ops_total"), h.count);
}

// -- trace spans -------------------------------------------------------------

TEST(TraceTest, SpansNestAndCarryData) {
  TraceContext trace;
  {
    ScopedSpan outer(&trace, "match");
    outer.SetAttr("engine", "sql");
    {
      ScopedSpan inner(&trace, "rule-query");
      inner.AddCount("rows", 2);
      inner.AddCount("rows", 3);  // accumulates into one counter
    }
    ScopedSpan sibling(&trace, "record-match");
  }
  const TraceSpan* root = trace.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "match");
  ASSERT_EQ(root->children.size(), 2u);
  EXPECT_EQ(root->children[0]->name, "rule-query");
  EXPECT_EQ(root->children[0]->CounterValue("rows"), 5u);
  EXPECT_EQ(root->children[1]->name, "record-match");
  EXPECT_GE(root->elapsed_us, root->children[0]->elapsed_us);

  EXPECT_EQ(trace.FindSpan("record-match"), root->children[1].get());
  EXPECT_EQ(trace.FindSpan("absent"), nullptr);
  EXPECT_EQ(root->FindChild("rule-query"), root->children[0].get());
}

TEST(TraceTest, NullContextIsANoOp) {
  ScopedSpan span(nullptr, "anything");
  EXPECT_FALSE(span.active());
  span.SetAttr("k", "v");   // must not crash
  span.AddCount("n", 1);
  span.End();
}

TEST(TraceTest, ContextIsReusableAcrossRequests) {
  TraceContext trace;
  { ScopedSpan first(&trace, "first"); }
  ASSERT_NE(trace.root(), nullptr);
  EXPECT_EQ(trace.root()->name, "first");
  { ScopedSpan second(&trace, "second"); }
  EXPECT_EQ(trace.root()->name, "second");  // replaced, not nested
  EXPECT_TRUE(trace.root()->children.empty());
}

TEST(TraceTest, RenderTextIndentsChildren) {
  TraceContext trace;
  {
    ScopedSpan outer(&trace, "match");
    outer.SetAttr("engine", "sql");
    ScopedSpan inner(&trace, "ref-lookup");
    inner.AddCount("rows", 1);
  }
  std::string text = trace.RenderText();
  EXPECT_NE(text.find("match "), std::string::npos) << text;
  EXPECT_NE(text.find("{engine=sql}"), std::string::npos) << text;
  EXPECT_NE(text.find("\n  ref-lookup "), std::string::npos) << text;
  EXPECT_NE(text.find("[rows=1]"), std::string::npos) << text;

  std::string json = trace.RenderJson();
  EXPECT_NE(json.find("\"name\": \"match\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"ref-lookup\""), std::string::npos)
      << json;
}

}  // namespace
}  // namespace p3pdb::obs
