// End-to-end observability tests: the match path's trace shape on both
// engines, the §6.3.2 category-augmentation finding reproduced by counters
// (deterministic — no wall-clock assertions), server/proxy metrics, and the
// zero-overhead guarantee when tracing is disabled.

#include <gtest/gtest.h>

#include <string>

#include "obs/trace.h"
#include "server/policy_server.h"
#include "server/proxy_service.h"
#include "workload/paper_examples.h"

namespace p3pdb::server {
namespace {

using obs::TraceContext;
using obs::TraceSpan;

Result<std::unique_ptr<PolicyServer>> MakeSqlServer(
    bool tracing, bool record_matches = false,
    bool use_prepared_statements = false) {
  PolicyServer::Options options;
  options.engine = EngineKind::kSql;
  options.enable_tracing = tracing;
  options.record_matches = record_matches;
  options.use_prepared_statements = use_prepared_statements;
  P3PDB_ASSIGN_OR_RETURN(std::unique_ptr<PolicyServer> server,
                         PolicyServer::Create(options));
  P3PDB_RETURN_IF_ERROR(
      server->InstallPolicy(workload::VolgaPolicy()).status());
  P3PDB_RETURN_IF_ERROR(
      server->InstallReferenceFile(workload::VolgaReferenceFile()));
  return server;
}

// Collects every "work" counter in the tree, keyed by span name.
void CollectWork(const TraceSpan& span,
                 std::vector<std::pair<std::string, uint64_t>>* out) {
  for (const auto& [key, value] : span.counters) {
    if (key == "work") out->emplace_back(span.name, value);
  }
  for (const auto& child : span.children) CollectWork(*child, out);
}

TEST(ObservabilityTest, Section6AugmentationDominatesByCounter) {
  // §6.3.2: on the native APPEL engine with per-match augmentation, the
  // dominant cost of a match is augmenting the policy with the category
  // schema — not evaluating the rule connectives. The spans carry explicit
  // work counters (elements visited), so the comparison is deterministic.
  auto server = PolicyServer::Create({.engine = EngineKind::kNativeAppel,
                                      .augmentation = Augmentation::kPerMatch,
                                      .enable_tracing = true});
  ASSERT_TRUE(server.ok());
  auto policy_id = server.value()->InstallPolicy(workload::VolgaPolicy());
  ASSERT_TRUE(policy_id.ok());
  auto pref = server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());

  TraceContext trace;
  auto result = server.value()->MatchPolicyId(pref.value(), policy_id.value(),
                                              &trace);
  ASSERT_TRUE(result.ok());

  const TraceSpan* aug = trace.FindSpan("category-augmentation");
  const TraceSpan* eval = trace.FindSpan("connective-eval");
  ASSERT_NE(aug, nullptr) << trace.RenderText();
  ASSERT_NE(eval, nullptr) << trace.RenderText();
  EXPECT_GT(aug->CounterValue("work"), 0u);
  EXPECT_GT(aug->CounterValue("work"), eval->CounterValue("work"))
      << trace.RenderText();

  // Strictly the largest work counter anywhere in the tree.
  std::vector<std::pair<std::string, uint64_t>> work;
  CollectWork(*trace.root(), &work);
  for (const auto& [name, value] : work) {
    if (name == "category-augmentation") continue;
    EXPECT_LT(value, aug->CounterValue("work")) << name;
  }
}

TEST(ObservabilityTest, PreAugmentedEngineSkipsAugmentationSpan) {
  // With schema-augmented storage (the paper's fix), per-match augmentation
  // disappears from the trace entirely.
  auto server =
      PolicyServer::Create({.engine = EngineKind::kNativeAppel,
                            .augmentation = Augmentation::kAtInstall,
                            .enable_tracing = true});
  ASSERT_TRUE(server.ok());
  auto policy_id = server.value()->InstallPolicy(workload::VolgaPolicy());
  ASSERT_TRUE(policy_id.ok());
  auto pref = server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());
  TraceContext trace;
  ASSERT_TRUE(server.value()
                  ->MatchPolicyId(pref.value(), policy_id.value(), &trace)
                  .ok());
  EXPECT_EQ(trace.FindSpan("category-augmentation"), nullptr)
      << trace.RenderText();
  EXPECT_NE(trace.FindSpan("connective-eval"), nullptr) << trace.RenderText();
}

TEST(ObservabilityTest, SqlMatchTraceShape) {
  auto server = MakeSqlServer(/*tracing=*/true, /*record_matches=*/true);
  ASSERT_TRUE(server.ok());
  auto pref = server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());

  TraceContext trace;
  auto result = server.value()->MatchUri(pref.value(), "/catalog/specials",
                                         &trace);
  ASSERT_TRUE(result.ok());

  const TraceSpan* root = trace.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "match");
  // The match pipeline: reference-file lookup, then rule queries against
  // the shredded policy, each backed by the SQL executor spans.
  const TraceSpan* ref = root->FindChild("ref-lookup");
  ASSERT_NE(ref, nullptr) << trace.RenderText();
  EXPECT_NE(trace.FindSpan("sql-execute"), nullptr) << trace.RenderText();
  EXPECT_NE(trace.FindSpan("rule-query"), nullptr) << trace.RenderText();
  EXPECT_NE(trace.FindSpan("record-match"), nullptr) << trace.RenderText();

  // The rendered tree carries the engine attribute and per-span counters.
  std::string text = trace.RenderText();
  EXPECT_NE(text.find("engine=sql"), std::string::npos) << text;
}

TEST(ObservabilityTest, TracedCompileHasTranslateAndPrepareSpans) {
  auto server = MakeSqlServer(/*tracing=*/true, /*record_matches=*/false,
                              /*use_prepared_statements=*/true);
  ASSERT_TRUE(server.ok());
  TraceContext trace;
  auto pref = server.value()->CompilePreference(workload::JanePreference(),
                                                &trace);
  ASSERT_TRUE(pref.ok());
  const TraceSpan* root = trace.root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "compile-preference");
  EXPECT_NE(root->FindChild("translate"), nullptr) << trace.RenderText();
  EXPECT_NE(root->FindChild("prepare"), nullptr) << trace.RenderText();
}

TEST(ObservabilityTest, DisabledTracingLeavesContextUntouched) {
  // enable_tracing=false (the default): a supplied context must stay empty —
  // the guarantee behind "zero overhead when tracing is off" (no spans, no
  // clock reads on the match path).
  auto server = MakeSqlServer(/*tracing=*/false);
  ASSERT_TRUE(server.ok());
  auto pref = server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());
  TraceContext trace;
  ASSERT_TRUE(
      server.value()->MatchUri(pref.value(), "/catalog/specials", &trace).ok());
  EXPECT_EQ(trace.root(), nullptr);
}

TEST(ObservabilityTest, ServerMetricsCountMatches) {
  auto server = MakeSqlServer(/*tracing=*/false);
  ASSERT_TRUE(server.ok());
  auto pref = server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        server.value()->MatchUri(pref.value(), "/catalog/specials").ok());
  }

  obs::MetricsSnapshot snap = server.value()->MetricsSnapshot();
  EXPECT_EQ(snap.counters.at("p3p_matches_total"), 3u);
  EXPECT_EQ(snap.counters.at("p3p_match_errors_total"), 0u);
  EXPECT_EQ(snap.counters.at("p3p_preference_compiles_total"), 1u);
  EXPECT_GE(snap.counters.at("p3p_rule_queries_total"), 1u);
  EXPECT_EQ(snap.gauges.at("p3p_policies_installed"), 1);
  EXPECT_EQ(snap.histograms.at("p3p_match_duration_us").count, 3u);

  // The match cache is on by default: the first identical match misses and
  // the two repeats are warm hits, mirrored into the registry.
  EXPECT_EQ(snap.counters.at("p3p_match_cache_hits_total"), 2u);
  EXPECT_EQ(snap.counters.at("p3p_match_cache_misses_total"), 1u);
  EXPECT_EQ(snap.gauges.at("p3p_match_cache_entries"), 1);
  EXPECT_EQ(snap.histograms.at("p3p_match_cache_hit_duration_us").count, 2u);
  EXPECT_EQ(snap.histograms.at("p3p_match_cache_miss_duration_us").count, 1u);

  // Both renderings carry the same counter.
  EXPECT_NE(
      server.value()->RenderMetricsText().find("p3p_matches_total 3"),
      std::string::npos);
  EXPECT_NE(
      server.value()->RenderMetricsJson().find("\"p3p_matches_total\": 3"),
      std::string::npos);
}

TEST(ObservabilityTest, MetricsCanBeDisabled) {
  PolicyServer::Options options;
  options.engine = EngineKind::kSql;
  options.collect_metrics = false;
  auto server = PolicyServer::Create(options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->InstallPolicy(workload::VolgaPolicy()).ok());
  ASSERT_TRUE(server.value()
                  ->InstallReferenceFile(workload::VolgaReferenceFile())
                  .ok());
  auto pref = server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());
  ASSERT_TRUE(
      server.value()->MatchUri(pref.value(), "/catalog/specials").ok());
  obs::MetricsSnapshot snap = server.value()->MetricsSnapshot();
  EXPECT_EQ(snap.counters.at("p3p_matches_total"), 0u);
  EXPECT_EQ(snap.histograms.at("p3p_match_duration_us").count, 0u);
}

TEST(ObservabilityTest, ProxyCountsRequestsAndForwardsTrace) {
  PolicyServer::Options site_options;
  site_options.engine = EngineKind::kSql;
  site_options.enable_tracing = true;
  ProxyService proxy(site_options);
  auto site = proxy.AddSite("books.example");
  ASSERT_TRUE(site.ok());
  ASSERT_TRUE(site.value()->InstallPolicy(workload::VolgaPolicy()).ok());
  ASSERT_TRUE(
      site.value()->InstallReferenceFile(workload::VolgaReferenceFile()).ok());
  ASSERT_TRUE(proxy.Subscribe("jane", workload::JanePreference()).ok());

  TraceContext trace;
  auto result = proxy.HandleRequest("jane", "books.example",
                                    "/catalog/specials", &trace);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(trace.root(), nullptr);
  EXPECT_EQ(trace.root()->name, "proxy-request");
  // The site server honored the forwarded context: its match span nests
  // under the proxy's.
  EXPECT_NE(trace.FindSpan("match"), nullptr) << trace.RenderText();

  auto missing = proxy.HandleRequest("jane", "nowhere.example", "/");
  EXPECT_FALSE(missing.ok());

  obs::MetricsSnapshot snap = proxy.MetricsSnapshot();
  EXPECT_EQ(snap.counters.at("proxy_requests_total"), 2u);
  EXPECT_EQ(snap.counters.at("proxy_request_errors_total"), 1u);
  EXPECT_EQ(snap.histograms.at("proxy_request_duration_us").count, 2u);
}

}  // namespace
}  // namespace p3pdb::server
