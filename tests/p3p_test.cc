// Tests for the P3P domain model: vocabulary, base data schema, policy
// parsing/validation/round-trip, reference files, and augmentation.

#include <gtest/gtest.h>

#include <algorithm>

#include "p3p/augment.h"
#include "p3p/data_schema.h"
#include "p3p/policy.h"
#include "p3p/policy_xml.h"
#include "p3p/reference_file.h"
#include "p3p/vocab.h"
#include "workload/paper_examples.h"
#include "xml/writer.h"

namespace p3pdb::p3p {
namespace {

TEST(VocabTest, CountsMatchTheSpec) {
  // Paper §2.1: 12 purposes, 6 recipients, 5 retentions.
  EXPECT_EQ(Purposes().size(), 12u);
  EXPECT_EQ(Recipients().size(), 6u);
  EXPECT_EQ(Retentions().size(), 5u);
  EXPECT_EQ(Categories().size(), 17u);
}

TEST(VocabTest, PaperExamplesAreValid) {
  for (const char* v : {"current", "individual-decision", "contact"}) {
    EXPECT_TRUE(IsValidPurpose(v)) << v;
  }
  for (const char* v : {"ours", "same", "unrelated"}) {
    EXPECT_TRUE(IsValidRecipient(v)) << v;
  }
  for (const char* v :
       {"stated-purpose", "business-practices", "indefinitely"}) {
    EXPECT_TRUE(IsValidRetention(v)) << v;
  }
  EXPECT_FALSE(IsValidPurpose("surveillance"));
  EXPECT_FALSE(IsValidRecipient("everyone"));
}

TEST(VocabTest, RequiredParsing) {
  Required r;
  EXPECT_TRUE(ParseRequired("always", &r));
  EXPECT_EQ(r, Required::kAlways);
  EXPECT_TRUE(ParseRequired("opt-in", &r));
  EXPECT_EQ(r, Required::kOptIn);
  EXPECT_TRUE(ParseRequired("opt-out", &r));
  EXPECT_EQ(r, Required::kOptOut);
  EXPECT_FALSE(ParseRequired("maybe", &r));
  EXPECT_EQ(RequiredToString(Required::kOptIn), "opt-in");
}

TEST(DataSchemaTest, LookupPaths) {
  const DataSchema& schema = DataSchema::Base();
  EXPECT_TRUE(schema.IsKnownRef("user.name"));
  EXPECT_TRUE(schema.IsKnownRef("user.name.given"));
  EXPECT_TRUE(schema.IsKnownRef("#user.home-info.postal.street"));
  EXPECT_TRUE(schema.IsKnownRef("dynamic.miscdata"));
  EXPECT_TRUE(schema.IsKnownRef("thirdparty.bdate.ymd.year"));
  EXPECT_TRUE(schema.IsKnownRef("business.contact-info.telecom.fax.number"));
  EXPECT_FALSE(schema.IsKnownRef("user.shoe-size"));
  EXPECT_FALSE(schema.IsKnownRef(""));
  EXPECT_FALSE(schema.IsKnownRef("user.name.given.extra"));
}

TEST(DataSchemaTest, FixedCategories) {
  const DataSchema& schema = DataSchema::Base();
  std::vector<std::string> cats = schema.CategoriesFor("user.name.given");
  EXPECT_EQ(cats, (std::vector<std::string>{"demographic", "physical"}));
  cats = schema.CategoriesFor("user.login.id");
  EXPECT_EQ(cats, (std::vector<std::string>{"uniqueid"}));
  cats = schema.CategoriesFor("user.home-info.online.email");
  EXPECT_EQ(cats, (std::vector<std::string>{"online"}));
}

TEST(DataSchemaTest, StructureRefCoversDescendants) {
  const DataSchema& schema = DataSchema::Base();
  // user.home-info covers postal (physical, demographic), telecom
  // (physical), and online (online).
  std::vector<std::string> cats = schema.CategoriesFor("user.home-info");
  EXPECT_EQ(cats, (std::vector<std::string>{"demographic", "online",
                                            "physical"}));
}

TEST(DataSchemaTest, VariableCategoryElements) {
  const DataSchema& schema = DataSchema::Base();
  EXPECT_TRUE(schema.IsVariableCategory("dynamic.miscdata"));
  EXPECT_TRUE(schema.IsVariableCategory("dynamic.cookies"));
  EXPECT_FALSE(schema.IsVariableCategory("user.name"));
  // Variable-category elements contribute no fixed categories.
  EXPECT_TRUE(schema.CategoriesFor("dynamic.miscdata").empty());
}

TEST(DataSchemaTest, SchemaIsSubstantial) {
  // The base schema models well over a hundred elements.
  EXPECT_GT(DataSchema::Base().ElementCount(), 100u);
}

TEST(NormalizeDataRefTest, Forms) {
  EXPECT_EQ(NormalizeDataRef("#user.name"), "user.name");
  EXPECT_EQ(NormalizeDataRef("user.name"), "user.name");
  EXPECT_EQ(NormalizeDataRef("base#user.name"), "user.name");
  EXPECT_EQ(NormalizeDataRef(" #user.name "), "user.name");
}

TEST(PolicyTest, VolgaValidates) {
  EXPECT_TRUE(workload::VolgaPolicy().Validate().ok());
}

TEST(PolicyTest, EmptyPolicyFailsValidation) {
  Policy policy;
  policy.name = "empty";
  EXPECT_FALSE(policy.Validate().ok());
}

TEST(PolicyTest, InvalidPurposeRejected) {
  Policy policy = workload::VolgaPolicy();
  policy.statements[0].purposes[0].value = "not-a-purpose";
  EXPECT_FALSE(policy.Validate().ok());
}

TEST(PolicyTest, CurrentCannotBeOptional) {
  Policy policy = workload::VolgaPolicy();
  policy.statements[0].purposes[0].required = Required::kOptIn;
  EXPECT_FALSE(policy.Validate().ok());
}

TEST(PolicyTest, UnknownDataRefRejectedWhenStrict) {
  Policy policy = workload::VolgaPolicy();
  policy.statements[0].data_groups[0].items[0].ref = "user.unknown-thing";
  EXPECT_FALSE(policy.Validate(true).ok());
  EXPECT_TRUE(policy.Validate(false).ok())
      << "lenient mode should accept unknown refs";
}

TEST(PolicyTest, MiscdataRequiresCategories) {
  Policy policy = workload::VolgaPolicy();
  policy.statements[0].data_groups[0].items[2].categories.clear();
  EXPECT_FALSE(policy.Validate().ok());
}

TEST(PolicyTest, CanonicalizeMergesGroups) {
  Policy policy = workload::VolgaPolicy();
  DataGroup extra;
  extra.items.push_back(DataItem{"user.gender", false, {}});
  policy.statements[0].data_groups.push_back(extra);
  ASSERT_EQ(policy.statements[0].data_groups.size(), 2u);
  Policy canonical = Canonicalized(policy);
  ASSERT_EQ(canonical.statements[0].data_groups.size(), 1u);
  EXPECT_EQ(canonical.statements[0].data_groups[0].items.size(), 4u);
  // Untouched statements keep their single group.
  EXPECT_EQ(canonical.statements[1].data_groups.size(), 1u);
}

TEST(PolicyXmlTest, VolgaRoundTrips) {
  Policy original = workload::VolgaPolicy();
  std::string text = PolicyToText(original);
  auto parsed = PolicyFromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Policy& p = parsed.value();
  EXPECT_EQ(p.name, original.name);
  EXPECT_EQ(p.discuri, original.discuri);
  EXPECT_EQ(p.access, original.access);
  ASSERT_EQ(p.statements.size(), 2u);
  EXPECT_EQ(p.statements[0].purposes.size(), 1u);
  EXPECT_EQ(p.statements[1].purposes[0].required, Required::kOptIn);
  EXPECT_EQ(p.statements[0].retention, "stated-purpose");
  ASSERT_EQ(p.statements[0].data_groups.size(), 1u);
  EXPECT_EQ(p.statements[0].data_groups[0].items[2].categories,
            (std::vector<std::string>{"purchase"}));
  EXPECT_EQ(p.entity.data.size(), 2u);
  // Serialize again: fixed point.
  EXPECT_EQ(PolicyToText(p), text);
}

TEST(PolicyXmlTest, ParsesPaperFigureOneShape) {
  const char* text = R"(<POLICY name="fig1">
    <STATEMENT>
      <PURPOSE><current/></PURPOSE>
      <RECIPIENT><ours/><same/></RECIPIENT>
      <RETENTION><stated-purpose/></RETENTION>
      <DATA-GROUP>
        <DATA ref="#user.name"/>
        <DATA ref="#user.home-info.postal"/>
        <DATA ref="#dynamic.miscdata">
          <CATEGORIES><purchase/></CATEGORIES>
        </DATA>
      </DATA-GROUP>
    </STATEMENT>
    <STATEMENT>
      <PURPOSE>
        <individual-decision required="opt-in"/>
        <contact required="opt-in"/>
      </PURPOSE>
      <RECIPIENT><ours/></RECIPIENT>
      <RETENTION><business-practices/></RETENTION>
      <DATA-GROUP>
        <DATA ref="#user.home-info.online.email"/>
        <DATA ref="#dynamic.miscdata">
          <CATEGORIES><purchase/></CATEGORIES>
        </DATA>
      </DATA-GROUP>
    </STATEMENT>
  </POLICY>)";
  auto parsed = PolicyFromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed.value().Validate().ok());
  EXPECT_EQ(parsed.value().statements.size(), 2u);
}

TEST(PolicyXmlTest, RejectsMalformedRetention) {
  const char* text =
      "<POLICY name=\"x\"><STATEMENT>"
      "<RETENTION><stated-purpose/><indefinitely/></RETENTION>"
      "</STATEMENT></POLICY>";
  EXPECT_FALSE(PolicyFromText(text).ok());
}

TEST(PolicyXmlTest, RejectsDataWithoutRef) {
  const char* text =
      "<POLICY name=\"x\"><STATEMENT><DATA-GROUP><DATA/></DATA-GROUP>"
      "</STATEMENT></POLICY>";
  EXPECT_FALSE(PolicyFromText(text).ok());
}

TEST(PolicyXmlTest, PoliciesWrapperAccepted) {
  xml::Element wrapper("POLICIES");
  wrapper.AddChild(PolicyToXml(workload::VolgaPolicy()));
  std::string text = xml::Write(wrapper);
  auto parsed = PolicyFromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().name, "volga");
}

TEST(ReferenceFileTest, UriPatternMatch) {
  EXPECT_TRUE(UriPatternMatch("/*", "/anything/at/all"));
  EXPECT_TRUE(UriPatternMatch("/catalog/*", "/catalog/books/1"));
  EXPECT_FALSE(UriPatternMatch("/catalog/*", "/checkout"));
  EXPECT_TRUE(UriPatternMatch("*.html", "/index.html"));
  EXPECT_TRUE(UriPatternMatch("/a/*/c", "/a/b/c"));
  EXPECT_TRUE(UriPatternMatch("/a/*/c", "/a/x/y/c"));
  EXPECT_FALSE(UriPatternMatch("/a/*/c", "/a/b/d"));
  EXPECT_FALSE(UriPatternMatch("", "/x"));
  EXPECT_TRUE(UriPatternMatch("/exact", "/exact"));
  EXPECT_FALSE(UriPatternMatch("/exact", "/exactly"));
}

TEST(ReferenceFileTest, FirstMatchingRefWins) {
  ReferenceFile rf;
  PolicyRef a;
  a.about = "#special";
  a.includes.push_back("/shop/checkout/*");
  rf.refs.push_back(a);
  PolicyRef b;
  b.about = "#general";
  b.includes.push_back("/*");
  b.excludes.push_back("/private/*");
  rf.refs.push_back(b);

  EXPECT_EQ(rf.PolicyForPath("/shop/checkout/pay"), "#special");
  EXPECT_EQ(rf.PolicyForPath("/shop/browse"), "#general");
  EXPECT_EQ(rf.PolicyForPath("/private/notes"), std::nullopt);
}

TEST(ReferenceFileTest, CookiePatterns) {
  ReferenceFile rf;
  PolicyRef a;
  a.about = "#cookies";
  a.cookie_includes.push_back("/*");
  a.cookie_excludes.push_back("/tracker/*");
  rf.refs.push_back(a);
  EXPECT_EQ(rf.PolicyForCookie("/session"), "#cookies");
  EXPECT_EQ(rf.PolicyForCookie("/tracker/pixel"), std::nullopt);
  EXPECT_EQ(rf.PolicyForPath("/session"), std::nullopt);  // no INCLUDEs
}

TEST(ReferenceFileTest, RoundTrip) {
  ReferenceFile original = workload::VolgaReferenceFile();
  std::string text = ReferenceFileToText(original);
  auto parsed = ReferenceFileFromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const ReferenceFile& rf = parsed.value();
  EXPECT_EQ(rf.expiry_max_age, 86400);
  ASSERT_EQ(rf.refs.size(), 1u);
  EXPECT_EQ(rf.refs[0].about, "/P3P/policies.xml#volga");
  EXPECT_EQ(rf.refs[0].includes, original.refs[0].includes);
  EXPECT_EQ(rf.refs[0].excludes, original.refs[0].excludes);
  EXPECT_EQ(rf.refs[0].cookie_includes, original.refs[0].cookie_includes);
}

TEST(ReferenceFileTest, ParserRejectsMissingAbout) {
  const char* text =
      "<META><POLICY-REFERENCES><POLICY-REF>"
      "<INCLUDE>/*</INCLUDE></POLICY-REF></POLICY-REFERENCES></META>";
  EXPECT_FALSE(ReferenceFileFromText(text).ok());
}

TEST(AugmentTest, ModelAugmentationAddsFixedCategories) {
  Policy policy = workload::VolgaPolicy();
  size_t added = AugmentPolicy(&policy);
  EXPECT_GT(added, 0u);
  // user.name -> physical, demographic.
  const DataItem& name_item = policy.statements[0].data_groups[0].items[0];
  EXPECT_EQ(name_item.categories,
            (std::vector<std::string>{"demographic", "physical"}));
  // miscdata keeps its policy-supplied category only.
  const DataItem& misc = policy.statements[0].data_groups[0].items[2];
  EXPECT_EQ(misc.categories, (std::vector<std::string>{"purchase"}));
  // Augmenting twice is idempotent.
  EXPECT_EQ(AugmentPolicy(&policy), 0u);
}

TEST(AugmentTest, DomAugmentationMatchesModel) {
  Policy policy = workload::VolgaPolicy();
  std::unique_ptr<xml::Element> dom = PolicyToXml(policy);
  std::unique_ptr<xml::Element> augmented = AugmentPolicyXml(*dom);
  // The original DOM is untouched.
  const xml::Element* orig_data = dom->FindChild("STATEMENT")
                                      ->FindChild("DATA-GROUP")
                                      ->FindChild("DATA");
  EXPECT_EQ(orig_data->FindChild("CATEGORIES"), nullptr);
  // The copy gained CATEGORIES on user.name.
  const xml::Element* aug_data = augmented->FindChild("STATEMENT")
                                     ->FindChild("DATA-GROUP")
                                     ->FindChild("DATA");
  const xml::Element* cats = aug_data->FindChild("CATEGORIES");
  ASSERT_NE(cats, nullptr);
  EXPECT_NE(cats->FindChild("physical"), nullptr);
  EXPECT_NE(cats->FindChild("demographic"), nullptr);
}

}  // namespace
}  // namespace p3pdb::p3p
