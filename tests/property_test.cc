// Property-based differential tests.
//
// The reproduction's central correctness claim is that a general-purpose
// database engine evaluating translated SQL computes exactly what the
// specialized APPEL engine computes. These tests check that claim on
// randomized inputs: seeded random policies (the corpus generator with
// varying seeds) crossed with randomized preferences drawn from the full
// pattern grammar, across engines; plus differential checks between
// independent implementations of URI matching and schema lookup.

#include <gtest/gtest.h>

#include "common/random.h"
#include "p3p/augment.h"
#include "p3p/data_schema.h"
#include "p3p/policy_xml.h"
#include "p3p/reference_file.h"
#include "server/policy_server.h"
#include "shredder/reference_schema.h"
#include "sqldb/executor.h"
#include "workload/corpus.h"
#include "workload/random_preferences.h"
#include "xml/writer.h"

namespace p3pdb {
namespace {

using server::Augmentation;
using server::CompiledPreference;
using server::EngineKind;
using server::PolicyServer;
using workload::RandomPreference;
using workload::RandomPreferenceOptions;

std::unique_ptr<PolicyServer> MakeServer(EngineKind kind) {
  PolicyServer::Options options;
  options.engine = kind;
  options.augmentation = kind == EngineKind::kNativeAppel
                             ? Augmentation::kPerMatch
                             : Augmentation::kAtInstall;
  auto server = PolicyServer::Create(options);
  EXPECT_TRUE(server.ok()) << server.status();
  return std::move(server).value();
}

/// Differential fixture parameterized by RNG seed.
class RandomizedDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedDifferentialTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(RandomizedDifferentialTest, FiveEnginesAgreeOnRandomInputs) {
  const uint64_t seed = GetParam();
  std::vector<p3p::Policy> policies =
      workload::FortuneCorpus({.seed = seed, .policy_count = 8});

  constexpr EngineKind kEngines[] = {
      EngineKind::kNativeAppel, EngineKind::kSql, EngineKind::kSqlSimple,
      EngineKind::kXQueryNative, EngineKind::kXQueryXTable};
  struct Fixture {
    EngineKind kind;
    std::unique_ptr<PolicyServer> server;
    std::vector<int64_t> ids;
  };
  std::vector<Fixture> fixtures;
  for (EngineKind kind : kEngines) {
    Fixture fx{kind, MakeServer(kind), {}};
    for (const p3p::Policy& policy : policies) {
      auto id = fx.server->InstallPolicy(policy);
      ASSERT_TRUE(id.ok()) << id.status();
      fx.ids.push_back(id.value());
    }
    fixtures.push_back(std::move(fx));
  }

  Random rng(seed * 7919);
  RandomPreferenceOptions options;
  options.allow_exact_connectives = false;  // XQuery/simple-SQL boundary
  for (int trial = 0; trial < 12; ++trial) {
    appel::AppelRuleset pref = RandomPreference(&rng, options);
    ASSERT_TRUE(pref.Validate().ok());

    std::vector<CompiledPreference> compiled;
    bool all_compiled = true;
    for (Fixture& fx : fixtures) {
      auto c = fx.server->CompilePreference(pref);
      ASSERT_TRUE(c.ok()) << server::EngineKindName(fx.kind) << ": "
                          << c.status() << "\npreference:\n"
                          << appel::RulesetToText(pref);
      if (!c.ok()) {
        all_compiled = false;
        break;
      }
      compiled.push_back(std::move(c).value());
    }
    if (!all_compiled) continue;

    for (size_t p = 0; p < policies.size(); ++p) {
      std::string expected;
      int expected_rule = -2;
      for (size_t f = 0; f < fixtures.size(); ++f) {
        auto result =
            fixtures[f].server->MatchPolicyId(compiled[f], fixtures[f].ids[p]);
        ASSERT_TRUE(result.ok())
            << server::EngineKindName(fixtures[f].kind) << ": "
            << result.status();
        if (expected_rule == -2) {
          expected = result.value().behavior;
          expected_rule = result.value().fired_rule_index;
        } else {
          ASSERT_EQ(result.value().behavior, expected)
              << server::EngineKindName(fixtures[f].kind) << " on policy "
              << policies[p].name << "\npreference:\n"
              << appel::RulesetToText(pref);
          ASSERT_EQ(result.value().fired_rule_index, expected_rule)
              << server::EngineKindName(fixtures[f].kind) << " on policy "
              << policies[p].name;
        }
      }
    }
  }
}

TEST_P(RandomizedDifferentialTest, ExactConnectivesNativeVsOptimizedSql) {
  const uint64_t seed = GetParam();
  std::vector<p3p::Policy> policies =
      workload::FortuneCorpus({.seed = seed + 100, .policy_count = 6});

  auto native = MakeServer(EngineKind::kNativeAppel);
  auto sql = MakeServer(EngineKind::kSql);
  std::vector<int64_t> native_ids, sql_ids;
  for (const p3p::Policy& policy : policies) {
    auto n = native->InstallPolicy(policy);
    auto s = sql->InstallPolicy(policy);
    ASSERT_TRUE(n.ok());
    ASSERT_TRUE(s.ok());
    native_ids.push_back(n.value());
    sql_ids.push_back(s.value());
  }

  Random rng(seed * 104729);
  RandomPreferenceOptions options;
  options.allow_exact_connectives = true;
  for (int trial = 0; trial < 12; ++trial) {
    appel::AppelRuleset pref = RandomPreference(&rng, options);
    auto native_pref = native->CompilePreference(pref);
    auto sql_pref = sql->CompilePreference(pref);
    ASSERT_TRUE(native_pref.ok()) << native_pref.status();
    ASSERT_TRUE(sql_pref.ok())
        << sql_pref.status() << "\npreference:\n"
        << appel::RulesetToText(pref);
    for (size_t p = 0; p < policies.size(); ++p) {
      auto n = native->MatchPolicyId(native_pref.value(), native_ids[p]);
      auto s = sql->MatchPolicyId(sql_pref.value(), sql_ids[p]);
      ASSERT_TRUE(n.ok());
      ASSERT_TRUE(s.ok());
      ASSERT_EQ(n.value().behavior, s.value().behavior)
          << "policy " << policies[p].name << "\npreference:\n"
          << appel::RulesetToText(pref);
      ASSERT_EQ(n.value().fired_rule_index, s.value().fired_rule_index);
    }
  }
}

TEST_P(RandomizedDifferentialTest, UriMatchingAgreesWithSqlLike) {
  // Two independent implementations of P3P URI coverage: the in-memory
  // wildcard matcher and the shred-to-LIKE translation.
  const uint64_t seed = GetParam();
  Random rng(seed * 31337);
  auto random_segment = [&](bool allow_special) {
    static constexpr const char* kPieces[] = {
        "catalog", "shop", "a", "x1", "index.html", "b_c", "100%", "p-q"};
    std::string s = kPieces[rng.Uniform(allow_special ? 8 : 6)];
    return s;
  };
  for (int trial = 0; trial < 300; ++trial) {
    // Random pattern: segments joined by '/', '*' sprinkled in.
    std::string pattern = "/";
    int parts = rng.UniformInt(1, 4);
    for (int i = 0; i < parts; ++i) {
      if (i > 0) pattern += "/";
      pattern += rng.Bernoulli(0.3) ? "*" : random_segment(true);
    }
    std::string path = "/";
    int path_parts = rng.UniformInt(1, 4);
    for (int i = 0; i < path_parts; ++i) {
      if (i > 0) path += "/";
      path += random_segment(true);
    }
    bool direct = p3p::UriPatternMatch(pattern, path);
    bool via_like = sqldb::SqlLikeMatch(
        path, shredder::UriPatternToLike(pattern), '\\');
    ASSERT_EQ(direct, via_like)
        << "pattern '" << pattern << "' path '" << path << "'";
  }
}

TEST_P(RandomizedDifferentialTest, PolicyXmlRoundTripIsFixedPoint) {
  std::vector<p3p::Policy> policies =
      workload::FortuneCorpus({.seed = GetParam() * 13, .policy_count = 6});
  for (const p3p::Policy& policy : policies) {
    std::string text = p3p::PolicyToText(policy);
    auto parsed = p3p::PolicyFromText(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(p3p::PolicyToText(parsed.value()), text) << policy.name;
    EXPECT_TRUE(parsed.value().Validate().ok());
  }
}

TEST_P(RandomizedDifferentialTest, NaiveAndIndexedAugmentationAgree) {
  std::vector<p3p::Policy> policies =
      workload::FortuneCorpus({.seed = GetParam() * 17, .policy_count = 4});
  const p3p::DataSchema& schema = p3p::DataSchema::Base();
  for (const p3p::Policy& policy : policies) {
    std::unique_ptr<xml::Element> dom = p3p::PolicyToXml(policy);
    std::unique_ptr<xml::Element> fast = p3p::AugmentPolicyXml(*dom, schema);
    std::unique_ptr<xml::Element> naive =
        p3p::AugmentPolicyXmlNaive(*dom, schema);
    // Structural equality via serialization.
    EXPECT_EQ(xml::Write(*fast), xml::Write(*naive)) << policy.name;
  }
}

TEST(DataSchemaDocumentTest, RoundTripPreservesLookups) {
  const p3p::DataSchema& base = p3p::DataSchema::Base();
  auto parsed = p3p::DataSchemaFromXml(p3p::DataSchemaToXml(base));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().ElementCount(), base.ElementCount());
  for (const char* ref :
       {"user.name.given", "user.home-info", "dynamic.miscdata",
        "business.contact-info.telecom.fax.number", "thirdparty.gender"}) {
    EXPECT_EQ(parsed.value().CategoriesFor(ref), base.CategoriesFor(ref))
        << ref;
    EXPECT_EQ(parsed.value().IsVariableCategory(ref),
              base.IsVariableCategory(ref))
        << ref;
  }
  EXPECT_FALSE(parsed.value().IsKnownRef("user.no-such-element"));
}

TEST(DataSchemaDocumentTest, NaiveLookupAgreesWithIndexed) {
  const p3p::DataSchema& base = p3p::DataSchema::Base();
  for (const char* ref :
       {"user.name", "user.name.given", "user.home-info.postal.street",
        "dynamic.cookies", "business.name", "nonexistent.path"}) {
    EXPECT_EQ(p3p::NaiveCategoriesFor(base, ref), base.CategoriesFor(ref))
        << ref;
  }
}

}  // namespace
}  // namespace p3pdb
