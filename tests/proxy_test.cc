// Tests for the JRC-style proxy service (paper §3.3): multi-site hosting,
// subscriber accounts, compiled-preference caching and invalidation.

#include <gtest/gtest.h>

#include "server/proxy_service.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"

namespace p3pdb::server {
namespace {

using workload::JanePreference;
using workload::JrcPreference;
using workload::PreferenceLevel;
using workload::VolgaPolicy;
using workload::VolgaReferenceFile;

class ProxyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two sites: Volga the bookseller and a leakier marketing site.
    auto volga = proxy_.AddSite("volga.example.com");
    ASSERT_TRUE(volga.ok()) << volga.status();
    ASSERT_TRUE(volga.value()->InstallPolicy(VolgaPolicy()).ok());
    ASSERT_TRUE(
        volga.value()->InstallReferenceFile(VolgaReferenceFile()).ok());

    auto ads = proxy_.AddSite("ads.example.org");
    ASSERT_TRUE(ads.ok());
    p3p::Policy tracker = VolgaPolicy();
    tracker.name = "tracker";
    tracker.statements[0].purposes.push_back(
        p3p::PurposeItem{"telemarketing", p3p::Required::kAlways});
    tracker.statements[0].recipients.push_back(
        p3p::RecipientItem{"unrelated", p3p::Required::kAlways});
    ASSERT_TRUE(ads.value()->InstallPolicy(tracker).ok());
    p3p::ReferenceFile rf;
    p3p::PolicyRef ref;
    ref.about = "/P3P/policies.xml#tracker";
    ref.includes.push_back("/*");
    rf.refs.push_back(ref);
    ASSERT_TRUE(ads.value()->InstallReferenceFile(rf).ok());

    ASSERT_TRUE(proxy_.Subscribe("jane", JanePreference()).ok());
    ASSERT_TRUE(
        proxy_.Subscribe("carefree",
                         JrcPreference(PreferenceLevel::kVeryLow))
            .ok());
  }

  ProxyService proxy_;
};

TEST_F(ProxyTest, RoutesPerSiteAndPerUser) {
  auto jane_volga =
      proxy_.HandleRequest("jane", "volga.example.com", "/catalog");
  ASSERT_TRUE(jane_volga.ok()) << jane_volga.status();
  EXPECT_EQ(jane_volga.value().behavior, "request");

  auto jane_ads = proxy_.HandleRequest("jane", "ads.example.org", "/pixel");
  ASSERT_TRUE(jane_ads.ok());
  EXPECT_EQ(jane_ads.value().behavior, "block");

  auto carefree_ads =
      proxy_.HandleRequest("carefree", "ads.example.org", "/pixel");
  ASSERT_TRUE(carefree_ads.ok());
  EXPECT_EQ(carefree_ads.value().behavior, "request");
}

TEST_F(ProxyTest, UnknownHostAndUser) {
  EXPECT_EQ(proxy_.HandleRequest("jane", "nowhere.example", "/")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      proxy_.HandleRequest("stranger", "volga.example.com", "/").status()
          .code(),
      StatusCode::kNotFound);
}

TEST_F(ProxyTest, ResubscribeChangesDecisions) {
  // Jane relaxes to Very Low: the tracker is suddenly fine.
  ASSERT_TRUE(
      proxy_.Subscribe("jane", JrcPreference(PreferenceLevel::kVeryLow))
          .ok());
  auto relaxed = proxy_.HandleRequest("jane", "ads.example.org", "/pixel");
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed.value().behavior, "request");

  // And back to a strict preference: blocked again (the cached compiled
  // form must have been invalidated both times).
  ASSERT_TRUE(proxy_.Subscribe("jane", JanePreference()).ok());
  auto strict = proxy_.HandleRequest("jane", "ads.example.org", "/pixel");
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict.value().behavior, "block");
}

TEST_F(ProxyTest, UnsubscribeRemovesAccount) {
  ASSERT_TRUE(proxy_.Unsubscribe("jane").ok());
  EXPECT_EQ(
      proxy_.HandleRequest("jane", "volga.example.com", "/").status().code(),
      StatusCode::kNotFound);
  EXPECT_FALSE(proxy_.Unsubscribe("jane").ok());
  EXPECT_EQ(proxy_.user_count(), 1u);
}

TEST_F(ProxyTest, DuplicateSiteRejected) {
  EXPECT_EQ(proxy_.AddSite("volga.example.com").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(proxy_.AddSite("").ok());
  EXPECT_EQ(proxy_.site_count(), 2u);
}

TEST_F(ProxyTest, CookieRequestsUseCookiePatterns) {
  auto cookie =
      proxy_.HandleCookie("jane", "volga.example.com", "/session");
  ASSERT_TRUE(cookie.ok()) << cookie.status();
  EXPECT_TRUE(cookie.value().policy_found);
  // ads site registered no COOKIE-INCLUDE: no policy for its cookies.
  auto ads_cookie =
      proxy_.HandleCookie("jane", "ads.example.org", "/session");
  ASSERT_TRUE(ads_cookie.ok());
  EXPECT_FALSE(ads_cookie.value().policy_found);
}

TEST_F(ProxyTest, InvalidPreferenceRejectedAtSubscribe) {
  appel::AppelRuleset empty;
  EXPECT_FALSE(proxy_.Subscribe("x", empty).ok());
}

TEST(ProxyEngineTest, WorksOnNativeEngineToo) {
  PolicyServer::Options options;
  options.engine = EngineKind::kNativeAppel;
  options.augmentation = Augmentation::kPerMatch;
  ProxyService proxy(options);
  auto site = proxy.AddSite("volga.example.com");
  ASSERT_TRUE(site.ok());
  ASSERT_TRUE(site.value()->InstallPolicy(VolgaPolicy()).ok());
  ASSERT_TRUE(
      site.value()->InstallReferenceFile(VolgaReferenceFile()).ok());
  ASSERT_TRUE(proxy.Subscribe("jane", JanePreference()).ok());
  auto result =
      proxy.HandleRequest("jane", "volga.example.com", "/catalog");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().behavior, "request");
}

}  // namespace
}  // namespace p3pdb::server
