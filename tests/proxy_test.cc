// Tests for the JRC-style proxy service (paper §3.3): multi-site hosting,
// subscriber accounts, compiled-preference caching and invalidation.

#include <gtest/gtest.h>

#include "server/proxy_service.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"

namespace p3pdb::server {
namespace {

using workload::JanePreference;
using workload::JrcPreference;
using workload::PreferenceLevel;
using workload::VolgaPolicy;
using workload::VolgaReferenceFile;

class ProxyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two sites: Volga the bookseller and a leakier marketing site.
    auto volga = proxy_.AddSite("volga.example.com");
    ASSERT_TRUE(volga.ok()) << volga.status();
    ASSERT_TRUE(volga.value()->InstallPolicy(VolgaPolicy()).ok());
    ASSERT_TRUE(
        volga.value()->InstallReferenceFile(VolgaReferenceFile()).ok());

    auto ads = proxy_.AddSite("ads.example.org");
    ASSERT_TRUE(ads.ok());
    p3p::Policy tracker = VolgaPolicy();
    tracker.name = "tracker";
    tracker.statements[0].purposes.push_back(
        p3p::PurposeItem{"telemarketing", p3p::Required::kAlways});
    tracker.statements[0].recipients.push_back(
        p3p::RecipientItem{"unrelated", p3p::Required::kAlways});
    ASSERT_TRUE(ads.value()->InstallPolicy(tracker).ok());
    p3p::ReferenceFile rf;
    p3p::PolicyRef ref;
    ref.about = "/P3P/policies.xml#tracker";
    ref.includes.push_back("/*");
    rf.refs.push_back(ref);
    ASSERT_TRUE(ads.value()->InstallReferenceFile(rf).ok());

    ASSERT_TRUE(proxy_.Subscribe("jane", JanePreference()).ok());
    ASSERT_TRUE(
        proxy_.Subscribe("carefree",
                         JrcPreference(PreferenceLevel::kVeryLow))
            .ok());
  }

  ProxyService proxy_;
};

TEST_F(ProxyTest, RoutesPerSiteAndPerUser) {
  auto jane_volga =
      proxy_.HandleRequest("jane", "volga.example.com", "/catalog");
  ASSERT_TRUE(jane_volga.ok()) << jane_volga.status();
  EXPECT_EQ(jane_volga.value().behavior, "request");

  auto jane_ads = proxy_.HandleRequest("jane", "ads.example.org", "/pixel");
  ASSERT_TRUE(jane_ads.ok());
  EXPECT_EQ(jane_ads.value().behavior, "block");

  auto carefree_ads =
      proxy_.HandleRequest("carefree", "ads.example.org", "/pixel");
  ASSERT_TRUE(carefree_ads.ok());
  EXPECT_EQ(carefree_ads.value().behavior, "request");
}

TEST_F(ProxyTest, UnknownHostAndUser) {
  EXPECT_EQ(proxy_.HandleRequest("jane", "nowhere.example", "/")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      proxy_.HandleRequest("stranger", "volga.example.com", "/").status()
          .code(),
      StatusCode::kNotFound);
}

TEST_F(ProxyTest, ResubscribeChangesDecisions) {
  // Jane relaxes to Very Low: the tracker is suddenly fine.
  ASSERT_TRUE(
      proxy_.Subscribe("jane", JrcPreference(PreferenceLevel::kVeryLow))
          .ok());
  auto relaxed = proxy_.HandleRequest("jane", "ads.example.org", "/pixel");
  ASSERT_TRUE(relaxed.ok());
  EXPECT_EQ(relaxed.value().behavior, "request");

  // And back to a strict preference: blocked again (the cached compiled
  // form must have been invalidated both times).
  ASSERT_TRUE(proxy_.Subscribe("jane", JanePreference()).ok());
  auto strict = proxy_.HandleRequest("jane", "ads.example.org", "/pixel");
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict.value().behavior, "block");
}

TEST_F(ProxyTest, UnsubscribeRemovesAccount) {
  ASSERT_TRUE(proxy_.Unsubscribe("jane").ok());
  EXPECT_EQ(
      proxy_.HandleRequest("jane", "volga.example.com", "/").status().code(),
      StatusCode::kNotFound);
  EXPECT_FALSE(proxy_.Unsubscribe("jane").ok());
  EXPECT_EQ(proxy_.user_count(), 1u);
}

TEST_F(ProxyTest, DuplicateSiteRejected) {
  EXPECT_EQ(proxy_.AddSite("volga.example.com").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(proxy_.AddSite("").ok());
  EXPECT_EQ(proxy_.site_count(), 2u);
}

TEST_F(ProxyTest, CookieRequestsUseCookiePatterns) {
  auto cookie =
      proxy_.HandleCookie("jane", "volga.example.com", "/session");
  ASSERT_TRUE(cookie.ok()) << cookie.status();
  EXPECT_TRUE(cookie.value().policy_found);
  // ads site registered no COOKIE-INCLUDE: no policy for its cookies.
  auto ads_cookie =
      proxy_.HandleCookie("jane", "ads.example.org", "/session");
  ASSERT_TRUE(ads_cookie.ok());
  EXPECT_FALSE(ads_cookie.value().policy_found);
}

TEST_F(ProxyTest, InvalidPreferenceRejectedAtSubscribe) {
  appel::AppelRuleset empty;
  EXPECT_FALSE(proxy_.Subscribe("x", empty).ok());
}

TEST(ProxyLruTest, CompiledPreferencesAreBoundedPerSite) {
  // An open-ended subscriber population must not grow a site's compiled map
  // without bound: the cache is LRU with a per-site capacity.
  ProxyService proxy(PolicyServer::Options{},
                     /*compiled_capacity_per_site=*/3);
  EXPECT_EQ(proxy.compiled_capacity_per_site(), 3u);
  auto site = proxy.AddSite("volga.example.com");
  ASSERT_TRUE(site.ok());
  ASSERT_TRUE(site.value()->InstallPolicy(VolgaPolicy()).ok());
  ASSERT_TRUE(
      site.value()->InstallReferenceFile(VolgaReferenceFile()).ok());

  for (int u = 0; u < 5; ++u) {
    std::string user = "user" + std::to_string(u);
    ASSERT_TRUE(proxy.Subscribe(user, JanePreference()).ok());
    auto r = proxy.HandleRequest(user, "volga.example.com", "/catalog");
    ASSERT_TRUE(r.ok()) << r.status();
  }
  // Five users touched the site; only the three most recent keep a slot.
  EXPECT_EQ(proxy.compiled_count("volga.example.com"), 3u);
  obs::MetricsSnapshot snap = proxy.MetricsSnapshot();
  EXPECT_EQ(snap.counters.at("proxy_compiled_evictions_total"), 2u);
  EXPECT_EQ(snap.gauges.at("proxy_compiled_entries"), 3);

  // An evicted user's next request recompiles (correct result, one more
  // eviction as the capacity stays full).
  auto back = proxy.HandleRequest("user0", "volga.example.com", "/catalog");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().behavior, "request");
  snap = proxy.MetricsSnapshot();
  EXPECT_EQ(snap.counters.at("proxy_compiled_evictions_total"), 3u);
  EXPECT_EQ(proxy.compiled_count("volga.example.com"), 3u);

  // Recency is tracked through hits, not just inserts: touch the oldest
  // resident, then add a new user — the untouched one is evicted.
  auto touched =
      proxy.HandleRequest("user3", "volga.example.com", "/catalog");
  ASSERT_TRUE(touched.ok());
  ASSERT_TRUE(proxy.Subscribe("user5", JanePreference()).ok());
  auto newest = proxy.HandleRequest("user5", "volga.example.com", "/catalog");
  ASSERT_TRUE(newest.ok());
  // user4 (the only resident neither touched nor new) was evicted; user3
  // kept its slot.
  auto user3_again =
      proxy.HandleRequest("user3", "volga.example.com", "/catalog");
  ASSERT_TRUE(user3_again.ok());
  snap = proxy.MetricsSnapshot();
  // user5's insert evicted one; user3's repeat was a cache hit (no change).
  EXPECT_EQ(snap.counters.at("proxy_compiled_evictions_total"), 4u);
  EXPECT_EQ(proxy.compiled_count("volga.example.com"), 3u);

  // Unsubscribe drops the user's slot immediately.
  ASSERT_TRUE(proxy.Unsubscribe("user5").ok());
  EXPECT_EQ(proxy.compiled_count("volga.example.com"), 2u);
  snap = proxy.MetricsSnapshot();
  EXPECT_EQ(snap.gauges.at("proxy_compiled_entries"), 2);
}

TEST(ProxyEngineTest, WorksOnNativeEngineToo) {
  PolicyServer::Options options;
  options.engine = EngineKind::kNativeAppel;
  options.augmentation = Augmentation::kPerMatch;
  ProxyService proxy(options);
  auto site = proxy.AddSite("volga.example.com");
  ASSERT_TRUE(site.ok());
  ASSERT_TRUE(site.value()->InstallPolicy(VolgaPolicy()).ok());
  ASSERT_TRUE(
      site.value()->InstallReferenceFile(VolgaReferenceFile()).ok());
  ASSERT_TRUE(proxy.Subscribe("jane", JanePreference()).ok());
  auto result =
      proxy.HandleRequest("jane", "volga.example.com", "/catalog");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().behavior, "request");
}

}  // namespace
}  // namespace p3pdb::server
