// Randomized kill-and-recover harness for the disk-backed storage engine.
//
// A child process applies a seeded workload — policy installs, reference-file
// installs, multi-statement DML transactions — against a disk-backed
// PolicyServer whose files run through a FaultInjectingFileBackend. The
// backend kills the process (raw _exit, no destructors, no checkpoint) at a
// chosen write op, optionally flushing only a prefix of that write (a torn
// mid-page or mid-WAL-record write). The parent then reopens the directory
// without fault injection and checks the recovery invariants:
//
//   1. Recovery always succeeds — no crash point may brick the directory.
//   2. Durability is a unit-exact prefix: every workload unit whose commit
//      returned before the kill is fully present; the in-flight unit is
//      fully present or fully absent; nothing beyond it exists.
//   3. Every table's indexes are consistent with its heap (each live row
//      findable under its key, unique indexes single-valued).
//   4. The recovered server is semantically identical to an in-memory
//      oracle that replays the committed unit prefix: same policy ids and
//      versions, same KvStore contents, and identical match results for a
//      compiled preference across every policy and reference-file lookup
//      (the Figure 20 workload as ground truth).
//
// Crash points sweep the whole write schedule (stride-sampled down to the
// trial budget), so WAL appends, commit records, checkpoint page writes,
// meta flips, and close-time checkpoints all get killed. Every failure
// prints the (seed, crash-op, fraction) triple that reproduces it and
// preserves the storage directory under recovery_failure/.
//
// Environment knobs:
//   P3PDB_RECOVERY_SEED    workload seed (default 20260808)
//   P3PDB_RECOVERY_TRIALS  max crash points to test (default 240)

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "common/random.h"
#include "p3p/reference_file.h"
#include "server/policy_server.h"
#include "sqldb/file_backend.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"

namespace p3pdb::server {
namespace {

using sqldb::Value;

constexpr int kUnitCount = 12;
constexpr int kChildErrorExit = 1;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

// ------------------------------------------------------------- workload --

struct Workload {
  std::vector<p3p::Policy> corpus;
  p3p::ReferenceFile rf1;
  p3p::ReferenceFile rf2;
};

Workload MakeWorkload(uint64_t seed) {
  Workload w;
  w.corpus = workload::FortuneCorpus({.seed = seed, .policy_count = 6});
  w.rf1 = workload::CorpusReferenceFile(
      {w.corpus.begin(), w.corpus.begin() + 3});
  w.rf2 = workload::CorpusReferenceFile(
      {w.corpus.begin(), w.corpus.begin() + 5});
  return w;
}

/// One multi-statement DML transaction. The marker row (k = 10000 + unit),
/// inserted last inside the transaction, is the unit's visibility witness:
/// transactional atomicity means it exists iff the whole unit does.
Status ApplyDmlUnit(sqldb::Database* db, int unit, uint64_t seed) {
  P3PDB_RETURN_IF_ERROR(db->BeginTransaction());
  Random rng(seed * 1315423911ull + static_cast<uint64_t>(unit));
  auto body = [&]() -> Status {
    if (unit == 2) {
      P3PDB_RETURN_IF_ERROR(
          db->ExecuteScript("CREATE TABLE KvStore (k INTEGER, v VARCHAR(16), "
                            "PRIMARY KEY (k));"
                            "CREATE INDEX idx_kv_v ON KvStore (v);"));
      for (int k = 0; k < 10; ++k) {
        P3PDB_RETURN_IF_ERROR(
            db->Execute("INSERT INTO KvStore VALUES (" + std::to_string(k) +
                        ", 'v" + std::to_string(rng.UniformInt(0, 4)) + "')")
                .status());
      }
    } else if (unit == 5) {
      for (int k = 10; k < 20; ++k) {
        P3PDB_RETURN_IF_ERROR(
            db->Execute("INSERT INTO KvStore VALUES (" + std::to_string(k) +
                        ", 'w" + std::to_string(rng.UniformInt(0, 4)) + "')")
                .status());
      }
      P3PDB_RETURN_IF_ERROR(
          db->Execute("UPDATE KvStore SET v = 'u5' WHERE k < " +
                      std::to_string(rng.UniformInt(3, 6)))
              .status());
      P3PDB_RETURN_IF_ERROR(
          db->Execute("DELETE FROM KvStore WHERE k = " +
                      std::to_string(rng.UniformInt(6, 9)))
              .status());
    } else {  // unit 9
      P3PDB_RETURN_IF_ERROR(
          db->Execute("UPDATE KvStore SET v = NULL WHERE k >= " +
                      std::to_string(rng.UniformInt(14, 17)))
              .status());
      P3PDB_RETURN_IF_ERROR(
          db->Execute("DELETE FROM KvStore WHERE k < " +
                      std::to_string(rng.UniformInt(2, 4)))
              .status());
      for (int k = 20; k < 25; ++k) {
        P3PDB_RETURN_IF_ERROR(
            db->Execute("INSERT INTO KvStore VALUES (" + std::to_string(k) +
                        ", 'z" + std::to_string(rng.UniformInt(0, 4)) + "')")
                .status());
      }
    }
    return db
        ->Execute("INSERT INTO KvStore VALUES (" +
                  std::to_string(10000 + unit) + ", 'marker')")
        .status();
  };
  Status st = body();
  Status commit = db->CommitTransaction();
  if (!st.ok()) return st;
  return commit;
}

/// Applies one workload unit. Shared verbatim by the crashing child and the
/// in-memory oracle, so "replay the committed prefix" is literal.
Status ApplyUnit(PolicyServer* server, const Workload& w, int unit,
                 uint64_t seed) {
  switch (unit) {
    case 0:
      return server->InstallPolicy(w.corpus[0]).status();
    case 1:
      return server->InstallPolicy(w.corpus[1]).status();
    case 2:
    case 5:
    case 9:
      return ApplyDmlUnit(server->database(), unit, seed);
    case 3:
      return server->InstallPolicy(w.corpus[2]).status();
    case 4:
      return server->InstallReferenceFile(w.rf1);
    case 6:
      // Re-install of unit 0's policy name: creates version 2.
      return server->InstallPolicy(w.corpus[0]).status();
    case 7:
      return server->InstallPolicy(w.corpus[3]).status();
    case 8:
      return server->InstallReferenceFile(w.rf2);
    case 10:
      return server->InstallPolicy(w.corpus[4]).status();
    default:
      return server->InstallPolicy(w.corpus[5]).status();
  }
}

/// True when `unit`'s committed effects are observable in `server`.
bool UnitVisible(PolicyServer* server, const Workload& w, int unit) {
  auto policy_version_at_least = [&](const std::string& name, int64_t v) {
    return server->PolicyVersion(name) >= v;
  };
  auto reference_file_is = [&](const p3p::ReferenceFile& rf) {
    auto xml = server->database()->Execute("SELECT xml FROM RefFileCatalog");
    if (!xml.ok() || xml.value().rows.empty()) return false;
    return xml.value().rows[0][0].AsText() == p3p::ReferenceFileToText(rf);
  };
  auto marker_present = [&](int u) {
    auto row = server->database()->Execute(
        "SELECT COUNT(*) FROM KvStore WHERE k = " + std::to_string(10000 + u));
    return row.ok() && row.value().rows[0][0].AsInteger() == 1;
  };
  switch (unit) {
    case 0:
      return policy_version_at_least(w.corpus[0].name, 1);
    case 1:
      return policy_version_at_least(w.corpus[1].name, 1);
    case 2:
    case 5:
    case 9:
      return marker_present(unit);
    case 3:
      return policy_version_at_least(w.corpus[2].name, 1);
    case 4:
      // Superseded by unit 8's reference file; once that is in, this was.
      return reference_file_is(w.rf1) || reference_file_is(w.rf2);
    case 6:
      return policy_version_at_least(w.corpus[0].name, 2);
    case 7:
      return policy_version_at_least(w.corpus[3].name, 1);
    case 8:
      return reference_file_is(w.rf2);
    case 10:
      return policy_version_at_least(w.corpus[4].name, 1);
    default:
      return policy_version_at_least(w.corpus[5].name, 1);
  }
}

// ---------------------------------------------------------------- child --

PolicyServer::Options ChildOptions(const std::string& dir) {
  PolicyServer::Options options;
  options.engine = EngineKind::kSql;
  options.storage_path = dir;
  // Small pool and aggressive checkpointing so the write schedule covers
  // checkpoint page writes, meta flips, and WAL switches — not just WAL
  // appends.
  options.storage_buffer_pool_pages = 8;
  options.storage_checkpoint_wal_bytes = 16 << 10;
  return options;
}

/// Runs the workload in the (forked) child. Never returns: _exit(0) on
/// clean completion, kCrashExitCode via the fault hook, kChildErrorExit on
/// any unexpected error (reported through the progress file's .err side
/// channel for the parent to print).
void RunChildWorkload(const std::string& dir, const std::string& progress,
                      uint64_t seed, uint64_t crash_at_op, double fraction,
                      const std::string& ops_out) {
  auto die = [&](const std::string& why) {
    std::FILE* f = std::fopen((progress + ".err").c_str(), "w");
    if (f != nullptr) {
      std::fputs(why.c_str(), f);
      std::fclose(f);
    }
    _exit(kChildErrorExit);
  };

  auto plan = std::make_shared<sqldb::FaultPlan>();
  plan->crash_at_op = crash_at_op;
  plan->partial_fraction = fraction;
  PolicyServer::Options options = ChildOptions(dir);
  options.storage_backend_factory = sqldb::MakeFaultInjectingFactory(plan);

  Workload w = MakeWorkload(seed);
  std::FILE* log = std::fopen(progress.c_str(), "w");
  if (log == nullptr) die("cannot open progress file");
  {
    auto server = PolicyServer::Create(options);
    if (!server.ok()) die("create: " + server.status().ToString());
    for (int unit = 0; unit < kUnitCount; ++unit) {
      Status st = ApplyUnit(server.value().get(), w, unit, seed);
      if (!st.ok()) {
        die("unit " + std::to_string(unit) + ": " + st.ToString());
      }
      // The unit's commit fsync has returned; record it durably before
      // moving on, so the parent's marker count is a lower bound on what
      // recovery must find.
      std::fprintf(log, "%d\n", unit);
      std::fflush(log);
      fsync(fileno(log));
    }
    // Clean close: destructor checkpoint — also under fault injection.
  }
  std::fclose(log);
  if (!ops_out.empty()) {
    std::FILE* f = std::fopen(ops_out.c_str(), "w");
    if (f == nullptr) die("cannot open ops file");
    std::fprintf(f, "%llu\n",
                 static_cast<unsigned long long>(plan->op_counter->load()));
    std::fclose(f);
  }
  _exit(0);
}

// --------------------------------------------------------------- parent --

int CountProgressLines(const std::string& progress) {
  std::FILE* f = std::fopen(progress.c_str(), "r");
  if (f == nullptr) return 0;
  int lines = 0;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') ++lines;
  }
  std::fclose(f);
  return lines;
}

std::string ReadSmallFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return "";
  char buf[4096];
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  return buf;
}

/// Heap/index consistency: every live row findable under every index key,
/// unique indexes single-valued, live bitmap consistent with RowCount.
void VerifyTableIndexes(const sqldb::Table* table, const std::string& ctx) {
  size_t live = 0;
  for (size_t slot = 0; slot < table->SlotCount(); ++slot) {
    if (table->IsLive(slot)) ++live;
  }
  EXPECT_EQ(live, table->RowCount())
      << ctx << ": live bitmap disagrees with RowCount for table '"
      << table->schema().name() << "'";
  for (const auto& index : table->indexes()) {
    for (size_t slot = 0; slot < table->SlotCount(); ++slot) {
      if (!table->IsLive(slot)) continue;
      sqldb::IndexKey key = index->ExtractKey(table->RowAt(slot));
      bool has_null = false;
      for (const Value& v : key.values) has_null |= v.is_null();
      if (has_null) continue;  // NULL keys are not indexed
      const std::vector<size_t>* ids = index->Lookup(key);
      ASSERT_NE(ids, nullptr)
          << ctx << ": row " << slot << " of '" << table->schema().name()
          << "' missing from index '" << index->name() << "'";
      EXPECT_NE(std::find(ids->begin(), ids->end(), slot), ids->end())
          << ctx << ": row " << slot << " of '" << table->schema().name()
          << "' not under its key in index '" << index->name() << "'";
      if (index->unique()) {
        EXPECT_EQ(ids->size(), 1u)
            << ctx << ": unique index '" << index->name() << "' of '"
            << table->schema().name() << "' has duplicates";
      }
    }
  }
}

/// Compares the recovered server against an in-memory oracle that replayed
/// the same committed unit prefix: catalog state, KvStore contents, and the
/// full preference-match workload.
void CompareWithOracle(PolicyServer* recovered, const Workload& w,
                       int units_committed, uint64_t seed,
                       const std::string& ctx) {
  auto oracle_or = PolicyServer::Create(
      PolicyServer::Options{.engine = EngineKind::kSql});
  ASSERT_TRUE(oracle_or.ok()) << ctx << ": " << oracle_or.status();
  PolicyServer* oracle = oracle_or.value().get();
  for (int unit = 0; unit < units_committed; ++unit) {
    ASSERT_TRUE(ApplyUnit(oracle, w, unit, seed).ok()) << ctx;
  }

  EXPECT_EQ(recovered->policy_ids(), oracle->policy_ids()) << ctx;
  for (const p3p::Policy& policy : w.corpus) {
    EXPECT_EQ(recovered->PolicyVersion(policy.name),
              oracle->PolicyVersion(policy.name))
        << ctx << ": version of '" << policy.name << "'";
  }

  auto kv_recovered =
      recovered->database()->Execute("SELECT k, v FROM KvStore ORDER BY k");
  auto kv_oracle =
      oracle->database()->Execute("SELECT k, v FROM KvStore ORDER BY k");
  ASSERT_EQ(kv_recovered.ok(), kv_oracle.ok()) << ctx;
  if (kv_recovered.ok()) {
    EXPECT_EQ(kv_recovered.value().ToString(), kv_oracle.value().ToString())
        << ctx << ": KvStore contents diverge";
  }

  // The match workload: every policy id plus the reference-file lookups.
  auto pref_recovered = recovered->CompilePreference(
      workload::JrcPreference(workload::PreferenceLevel::kMedium));
  auto pref_oracle = oracle->CompilePreference(
      workload::JrcPreference(workload::PreferenceLevel::kMedium));
  ASSERT_TRUE(pref_recovered.ok()) << ctx << ": " << pref_recovered.status();
  ASSERT_TRUE(pref_oracle.ok()) << ctx;
  for (int64_t id : oracle->policy_ids()) {
    auto got = recovered->MatchPolicyId(pref_recovered.value(), id);
    auto want = oracle->MatchPolicyId(pref_oracle.value(), id);
    ASSERT_EQ(got.ok(), want.ok()) << ctx << ": policy " << id;
    if (!got.ok()) continue;
    EXPECT_EQ(got.value().behavior, want.value().behavior)
        << ctx << ": policy " << id;
    EXPECT_EQ(got.value().fired_rule_index, want.value().fired_rule_index)
        << ctx << ": policy " << id;
  }
  for (const char* path : {"/", "/index.html", "/catalog/item?id=3"}) {
    auto got = recovered->MatchUri(pref_recovered.value(), path);
    auto want = oracle->MatchUri(pref_oracle.value(), path);
    ASSERT_EQ(got.ok(), want.ok()) << ctx << ": uri " << path;
    if (!got.ok()) continue;
    EXPECT_EQ(got.value().behavior, want.value().behavior)
        << ctx << ": uri " << path;
    EXPECT_EQ(got.value().policy_found, want.value().policy_found)
        << ctx << ": uri " << path;
    EXPECT_EQ(got.value().policy_id, want.value().policy_id)
        << ctx << ": uri " << path;
  }
}

/// Full invariant check of one crashed (or completed) run.
void VerifyRecovered(const std::string& dir, const Workload& w,
                     int marked_units, uint64_t seed, const std::string& ctx) {
  auto server_or = PolicyServer::Create(ChildOptions(dir));
  ASSERT_TRUE(server_or.ok())
      << ctx << ": recovery failed: " << server_or.status();
  PolicyServer* server = server_or.value().get();

  // Unit-exact prefix durability.
  int recovered_units = 0;
  while (recovered_units < kUnitCount &&
         UnitVisible(server, w, recovered_units)) {
    ++recovered_units;
  }
  EXPECT_GE(recovered_units, marked_units)
      << ctx << ": a unit whose commit returned before the kill is missing";
  EXPECT_LE(recovered_units, marked_units + 1)
      << ctx << ": more than the in-flight unit survived";
  for (int unit = recovered_units; unit < kUnitCount; ++unit) {
    EXPECT_FALSE(UnitVisible(server, w, unit))
        << ctx << ": unit " << unit
        << " is visible past the committed prefix (non-prefix durability)";
  }

  // Index/heap consistency of everything recovered.
  for (const char* name :
       {"PolicyCatalog", "MatchLog", "RefFileCatalog", "KvStore", "Policy",
        "Statement", "Purpose", "Recipient", "Data", "Categories", "Meta",
        "Policyref", "Include", "Exclude", "CookieInclude", "CookieExclude",
        "ApplicablePolicy"}) {
    const sqldb::Table* table = server->database()->LookupTable(name);
    if (table != nullptr) VerifyTableIndexes(table, ctx);
  }

  CompareWithOracle(server, w, recovered_units, seed, ctx);
}

class RecoveryKillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "p3pdb_recovery";
    std::filesystem::remove_all(base_);
    std::filesystem::create_directories(base_);
  }

  /// Forks the workload child; returns its exit code.
  int RunChild(const std::string& dir, const std::string& progress,
               uint64_t seed, uint64_t crash_at_op, double fraction,
               const std::string& ops_out = "") {
    pid_t pid = fork();
    if (pid == 0) {
      RunChildWorkload(dir, progress, seed, crash_at_op, fraction, ops_out);
      _exit(kChildErrorExit);  // unreachable
    }
    EXPECT_GT(pid, 0) << "fork failed";
    if (pid <= 0) return -1;
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status)) return -1;
    return WEXITSTATUS(status);
  }

  /// Copies the crashed run's storage directory and progress file into
  /// recovery_failure/ so CI can upload them.
  void PreserveArtifacts(const std::string& dir, const std::string& progress,
                         uint64_t seed, uint64_t crash_op) {
    const std::string out = "recovery_failure/seed" + std::to_string(seed) +
                            "_op" + std::to_string(crash_op);
    std::error_code ec;
    std::filesystem::create_directories(out, ec);
    std::filesystem::copy(dir, out + "/storage",
                          std::filesystem::copy_options::recursive, ec);
    std::filesystem::copy_file(
        progress, out + "/progress.txt",
        std::filesystem::copy_options::overwrite_existing, ec);
  }

  std::string base_;
};

TEST_F(RecoveryKillTest, SurvivesKillsAcrossTheWholeWriteSchedule) {
  const uint64_t seed = EnvOr("P3PDB_RECOVERY_SEED", 20260808);
  const uint64_t trial_budget = EnvOr("P3PDB_RECOVERY_TRIALS", 240);
  const Workload w = MakeWorkload(seed);

  // Calibration: one fault-free run measures the total write schedule and
  // checks the full workload recovers cleanly after a graceful close.
  const std::string calib_dir = base_ + "/calibration";
  const std::string calib_progress = base_ + "/calibration.progress";
  const std::string ops_file = base_ + "/calibration.ops";
  int exit_code = RunChild(calib_dir, calib_progress, seed,
                           /*crash_at_op=*/0, 0.0, ops_file);
  ASSERT_EQ(exit_code, 0) << "calibration child failed: "
                          << ReadSmallFile(calib_progress + ".err");
  const uint64_t total_ops =
      std::strtoull(ReadSmallFile(ops_file).c_str(), nullptr, 10);
  ASSERT_GE(total_ops, 200u)
      << "workload too small to cover 200 crash points";
  ASSERT_EQ(CountProgressLines(calib_progress), kUnitCount);
  VerifyRecovered(calib_dir, w, kUnitCount, seed, "calibration");
  ASSERT_FALSE(HasFailure());

  // Crash sweep: stride-sample the write schedule down to the budget.
  // Partial fractions rotate so dropped, torn (quarter/half), and completed
  // fatal writes are all exercised.
  const uint64_t stride = std::max<uint64_t>(1, total_ops / trial_budget);
  static const double kFractions[] = {0.0, 0.25, 0.5, 1.0};
  int trials = 0;
  int crashes = 0;
  for (uint64_t op = 1; op <= total_ops; op += stride) {
    const double fraction = kFractions[(op / stride) % 4];
    const std::string dir = base_ + "/trial";
    const std::string progress = base_ + "/trial.progress";
    std::filesystem::remove_all(dir);
    std::filesystem::remove(progress);
    std::filesystem::remove(progress + ".err");

    exit_code = RunChild(dir, progress, seed, op, fraction);
    ++trials;
    const std::string ctx = "seed=" + std::to_string(seed) +
                            " crash_op=" + std::to_string(op) +
                            " fraction=" + std::to_string(fraction);
    if (exit_code == 0) {
      // The schedule shrank below this op (earlier checkpoint timing can
      // shift writes); a clean completion still must verify.
      VerifyRecovered(dir, w, kUnitCount, seed, ctx + " (completed)");
    } else {
      ASSERT_EQ(exit_code, sqldb::kCrashExitCode)
          << ctx << ": child failed instead of crashing: "
          << ReadSmallFile(progress + ".err");
      ++crashes;
      VerifyRecovered(dir, w, CountProgressLines(progress), seed, ctx);
    }
    if (HasFailure()) {
      PreserveArtifacts(dir, progress, seed, op);
      FAIL() << "recovery invariant violated at " << ctx
             << "\nreproduce with: P3PDB_RECOVERY_SEED=" << seed
             << " ./recovery_kill_test (artifacts in recovery_failure/)";
    }
  }
  // The sweep must actually have killed the process at scale.
  EXPECT_GE(trials, std::min<uint64_t>(trial_budget, total_ops));
  EXPECT_GE(crashes, trials * 3 / 4)
      << "most trials should die mid-write; the fault plan looks inert";
  std::filesystem::remove_all(base_);
}

}  // namespace
}  // namespace p3pdb::server
