// Robustness (deterministic fuzz) tests: every parser in the system must
// reject arbitrary mutations of valid inputs with a Status — never crash,
// hang, or accept garbage silently as something it is not.

#include <gtest/gtest.h>

#include "appel/model.h"
#include "common/random.h"
#include "p3p/compact.h"
#include "p3p/policy_xml.h"
#include "p3p/reference_file.h"
#include "sqldb/parser.h"
#include "workload/paper_examples.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xquery/parser.h"

namespace p3pdb {
namespace {

/// Applies `count` random byte-level mutations (replace, insert, delete,
/// truncate) to `input`.
std::string Mutate(Random* rng, std::string input, int count) {
  static constexpr char kBytes[] =
      "<>/=\"'&;%_*[]() abcXYZ012\t\n\\#@!{}";
  for (int i = 0; i < count && !input.empty(); ++i) {
    size_t pos = rng->Uniform(input.size());
    switch (rng->Uniform(4)) {
      case 0:
        input[pos] = kBytes[rng->Uniform(sizeof(kBytes) - 1)];
        break;
      case 1:
        input.insert(pos, 1, kBytes[rng->Uniform(sizeof(kBytes) - 1)]);
        break;
      case 2:
        input.erase(pos, 1 + rng->Uniform(3));
        break;
      default:
        input.resize(pos);  // truncate
        break;
    }
  }
  return input;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(101, 202, 303));

TEST_P(FuzzTest, XmlParserNeverCrashes) {
  Random rng(GetParam());
  std::string base = workload::VolgaPolicyXml();
  for (int i = 0; i < 400; ++i) {
    std::string mutated = Mutate(&rng, base, rng.UniformInt(1, 8));
    auto result = xml::Parse(mutated);  // ok or error, never UB
    if (result.ok()) {
      // Whatever parsed must serialize and re-parse.
      std::string again = xml::Write(*result.value().root);
      EXPECT_TRUE(xml::Parse(again).ok());
    }
  }
}

TEST_P(FuzzTest, PolicyParserNeverCrashes) {
  Random rng(GetParam() + 1);
  std::string base = workload::VolgaPolicyXml();
  for (int i = 0; i < 300; ++i) {
    std::string mutated = Mutate(&rng, base, rng.UniformInt(1, 10));
    auto result = p3p::PolicyFromText(mutated);
    if (result.ok()) {
      // Accepted policies must at least re-serialize.
      (void)p3p::PolicyToText(result.value());
    }
  }
}

TEST_P(FuzzTest, AppelParserNeverCrashes) {
  Random rng(GetParam() + 2);
  std::string base = workload::JanePreferenceXml();
  for (int i = 0; i < 300; ++i) {
    std::string mutated = Mutate(&rng, base, rng.UniformInt(1, 10));
    auto result = appel::RulesetFromText(mutated);
    if (result.ok()) {
      (void)appel::RulesetToText(result.value());
    }
  }
}

TEST_P(FuzzTest, SqlParserNeverCrashes) {
  Random rng(GetParam() + 3);
  const std::string base =
      "SELECT 'block' FROM ApplicablePolicy WHERE EXISTS (SELECT * FROM "
      "Purpose WHERE Purpose.policy_id = ApplicablePolicy.policy_id AND "
      "(Purpose.purpose = 'admin' OR Purpose.required = 'always')) "
      "ORDER BY 1 LIMIT 3";
  for (int i = 0; i < 400; ++i) {
    std::string mutated = Mutate(&rng, base, rng.UniformInt(1, 8));
    auto result = sqldb::ParseStatement(mutated);
    if (result.ok()) {
      // Parsed statements render back to parseable SQL.
      if (result.value()->kind == sqldb::StatementKind::kSelect) {
        auto* select =
            static_cast<sqldb::SelectStmt*>(result.value().get());
        EXPECT_TRUE(sqldb::ParseStatement(select->ToSql()).ok())
            << select->ToSql();
      }
    }
  }
}

TEST_P(FuzzTest, XQueryParserNeverCrashes) {
  Random rng(GetParam() + 4);
  const std::string base =
      "if (document(\"applicable-policy\")[POLICY[STATEMENT[PURPOSE["
      "(admin) or (contact[@required = \"always\"])]]]]) then <block/> "
      "else ()";
  for (int i = 0; i < 400; ++i) {
    std::string mutated = Mutate(&rng, base, rng.UniformInt(1, 8));
    auto result = xquery::ParseQuery(mutated);
    if (result.ok()) {
      EXPECT_TRUE(xquery::ParseQuery(result.value().ToString()).ok());
    }
  }
}

TEST_P(FuzzTest, CompactPolicyParserNeverCrashes) {
  Random rng(GetParam() + 5);
  const std::string base = "CAO DSP CUR IVDi CONi OUR SAM STP BUS ONL PHY";
  for (int i = 0; i < 400; ++i) {
    std::string mutated = Mutate(&rng, base, rng.UniformInt(1, 6));
    auto result = p3p::ParseCompactPolicy(mutated);
    if (result.ok()) {
      (void)p3p::CompactPolicyToString(result.value());
    }
  }
}

TEST_P(FuzzTest, ReferenceFileParserNeverCrashes) {
  Random rng(GetParam() + 6);
  std::string base =
      p3p::ReferenceFileToText(workload::VolgaReferenceFile());
  for (int i = 0; i < 300; ++i) {
    std::string mutated = Mutate(&rng, base, rng.UniformInt(1, 8));
    auto result = p3p::ReferenceFileFromText(mutated);
    if (result.ok()) {
      (void)result.value().PolicyForPath("/x/y");
    }
  }
}

}  // namespace
}  // namespace p3pdb
