// Tests for the PolicyServer facade: engine setup, policy versioning,
// reference-file replacement, match logging / conflict analytics, and the
// option validation rules.

#include <gtest/gtest.h>

#include "server/policy_server.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"

namespace p3pdb::server {
namespace {

using workload::JanePreference;
using workload::VolgaPolicy;
using workload::VolgaReferenceFile;

std::unique_ptr<PolicyServer> MustCreate(PolicyServer::Options options) {
  auto server = PolicyServer::Create(options);
  EXPECT_TRUE(server.ok()) << server.status();
  return std::move(server).value();
}

TEST(PolicyServerTest, CreateRejectsPerMatchAugmentationForSql) {
  PolicyServer::Options options;
  options.engine = EngineKind::kSql;
  options.augmentation = Augmentation::kPerMatch;
  auto server = PolicyServer::Create(options);
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
}

TEST(PolicyServerTest, InstallRejectsInvalidPolicy) {
  auto server = MustCreate({});
  p3p::Policy bad;
  bad.name = "bad";
  EXPECT_FALSE(server->InstallPolicy(bad).ok());
}

TEST(PolicyServerTest, VersioningTracksReinstalls) {
  auto server = MustCreate({});
  p3p::Policy v1 = VolgaPolicy();
  auto id1 = server->InstallPolicy(v1);
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(server->PolicyVersion("volga"), 1);

  // The site softens its policy: recommendations become opt-out.
  p3p::Policy v2 = VolgaPolicy();
  v2.statements[1].purposes[0].required = p3p::Required::kOptOut;
  auto id2 = server->InstallPolicy(v2);
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(id1.value(), id2.value());
  EXPECT_EQ(server->PolicyVersion("volga"), 2);

  // Both versions remain retrievable from the catalog.
  auto xml1 = server->PolicyXml("volga", 1);
  auto xml2 = server->PolicyXml("volga", 2);
  ASSERT_TRUE(xml1.ok());
  ASSERT_TRUE(xml2.ok());
  EXPECT_NE(xml1.value(), xml2.value());
  EXPECT_NE(xml2.value().find("opt-out"), std::string::npos);
  EXPECT_FALSE(server->PolicyXml("volga", 3).ok());
  EXPECT_EQ(server->PolicyVersion("unknown"), 0);
}

TEST(PolicyServerTest, ReferenceFileResolvesToLatestVersion) {
  auto server = MustCreate({});
  ASSERT_TRUE(server->InstallPolicy(VolgaPolicy()).ok());
  p3p::Policy v2 = VolgaPolicy();
  v2.statements[0].recipients.push_back(
      p3p::RecipientItem{"unrelated", p3p::Required::kAlways});
  auto id2 = server->InstallPolicy(v2);
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(server->InstallReferenceFile(VolgaReferenceFile()).ok());

  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok());
  auto result = server->MatchUri(pref.value(), "/catalog");
  ASSERT_TRUE(result.ok());
  // The newer, leakier version is in force: Jane blocks it.
  EXPECT_EQ(result.value().policy_id, id2.value());
  EXPECT_EQ(result.value().behavior, "block");
}

TEST(PolicyServerTest, ReferenceFileReplacement) {
  auto server = MustCreate({});
  ASSERT_TRUE(server->InstallPolicy(VolgaPolicy()).ok());
  ASSERT_TRUE(server->InstallReferenceFile(VolgaReferenceFile()).ok());
  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok());

  // Replace with a reference file that only covers /shop.
  p3p::ReferenceFile narrow;
  p3p::PolicyRef ref;
  ref.about = "/P3P/policies.xml#volga";
  ref.includes.push_back("/shop/*");
  narrow.refs.push_back(ref);
  ASSERT_TRUE(server->InstallReferenceFile(narrow).ok());

  auto covered = server->MatchUri(pref.value(), "/shop/cart");
  ASSERT_TRUE(covered.ok());
  EXPECT_TRUE(covered.value().policy_found);
  auto uncovered = server->MatchUri(pref.value(), "/catalog");
  ASSERT_TRUE(uncovered.ok());
  EXPECT_FALSE(uncovered.value().policy_found);
}

TEST(PolicyServerTest, MatchUriWithoutReferenceFileFails) {
  auto server = MustCreate({});
  ASSERT_TRUE(server->InstallPolicy(VolgaPolicy()).ok());
  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok());
  EXPECT_FALSE(server->MatchUri(pref.value(), "/x").ok());
}

TEST(PolicyServerTest, ConflictReportAggregatesMatchLog) {
  PolicyServer::Options options;
  options.record_matches = true;
  auto server = MustCreate(options);

  std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  std::vector<int64_t> ids;
  for (const p3p::Policy& policy : corpus) {
    auto id = server->InstallPolicy(policy);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  auto pref = server->CompilePreference(
      workload::JrcPreference(workload::PreferenceLevel::kHigh));
  ASSERT_TRUE(pref.ok());
  for (int64_t id : ids) {
    ASSERT_TRUE(server->MatchPolicyId(pref.value(), id).ok());
  }

  auto report = server->ConflictReport();
  ASSERT_TRUE(report.ok()) << report.status();
  // Every match was logged: behavior counts sum to the corpus size.
  int64_t total = 0;
  for (const auto& row : report.value().rows) {
    total += row[2].AsInteger();
  }
  EXPECT_EQ(total, static_cast<int64_t>(corpus.size()));
  // The site owner sees both conforming and conflicting policies.
  bool saw_block = false, saw_request = false;
  for (const auto& row : report.value().rows) {
    if (row[1].AsText() == "block") saw_block = true;
    if (row[1].AsText() == "request") saw_request = true;
  }
  EXPECT_TRUE(saw_block);
  EXPECT_TRUE(saw_request);
}

TEST(PolicyServerTest, CompileRejectsInvalidRuleset) {
  auto server = MustCreate({});
  appel::AppelRuleset empty;
  EXPECT_FALSE(server->CompilePreference(empty).ok());
}

TEST(PolicyServerTest, SqlEngineUsesIndexes) {
  auto server = MustCreate({});
  for (const p3p::Policy& policy : workload::FortuneCorpus()) {
    ASSERT_TRUE(server->InstallPolicy(policy).ok());
  }
  auto pref = server->CompilePreference(JanePreference());
  ASSERT_TRUE(pref.ok());
  server->database()->ResetStats();
  ASSERT_TRUE(
      server->MatchPolicyId(pref.value(), server->policy_ids()[5]).ok());
  const sqldb::ExecStats& stats = server->database()->stats();
  // The policy-id joins must be served by indexes, not repeated scans of
  // the whole Purpose/Statement tables.
  EXPECT_GT(stats.index_lookups, 0u);
}

TEST(PolicyServerTest, EngineKindNames) {
  EXPECT_STREQ(EngineKindName(EngineKind::kSql), "sql");
  EXPECT_STREQ(EngineKindName(EngineKind::kNativeAppel), "native-appel");
  EXPECT_STREQ(EngineKindName(EngineKind::kSqlSimple), "sql-simple");
  EXPECT_STREQ(EngineKindName(EngineKind::kXQueryNative), "xquery-native");
  EXPECT_STREQ(EngineKindName(EngineKind::kXQueryXTable), "xquery-xtable");
}

TEST(PolicyServerTest, XTableServerWithTightBudgetRejectsMedium) {
  PolicyServer::Options options;
  options.engine = EngineKind::kXQueryXTable;
  options.max_subquery_depth = 6;
  auto server = MustCreate(options);
  ASSERT_TRUE(server->InstallPolicy(VolgaPolicy()).ok());
  auto medium = server->CompilePreference(
      workload::JrcPreference(workload::PreferenceLevel::kMedium));
  ASSERT_FALSE(medium.ok());
  EXPECT_EQ(medium.status().code(), StatusCode::kLimitExceeded);
  EXPECT_TRUE(server
                  ->CompilePreference(workload::JrcPreference(
                      workload::PreferenceLevel::kHigh))
                  .ok());
}

}  // namespace
}  // namespace p3pdb::server
