// ShardedPolicyServer tests: global-id routing, cross-shard URI matching,
// epoch publication, durable recovery, and the torn-epoch stress — a match
// racing installs must only ever observe a fully installed catalog (run
// under TSan in CI via the `concurrency` ctest label).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "server/policy_server.h"
#include "server/sharded_server.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"

namespace p3pdb::server {
namespace {

using workload::JrcPreference;
using workload::PreferenceLevel;

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "p3pdb_serving_tier_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ShardedPolicyServer::Options TierOptions(size_t shards) {
  ShardedPolicyServer::Options o;
  o.shards = shards;
  o.engine = EngineKind::kSql;
  return o;
}

TEST(ServingTierTest, RejectsZeroShardsAndXTable) {
  EXPECT_FALSE(ShardedPolicyServer::Create(TierOptions(0)).ok());
  ShardedPolicyServer::Options o = TierOptions(2);
  o.engine = EngineKind::kXQueryXTable;
  EXPECT_FALSE(ShardedPolicyServer::Create(o).ok());
}

// Every corpus policy, matched by its global id on the tier, must yield
// the behavior a single PolicyServer yields for the same policy — the
// shard map and the local/global id arithmetic are pure routing.
TEST(ServingTierTest, GlobalIdMatchesAgreeWithSingleServer) {
  const std::vector<p3p::Policy> corpus = workload::FortuneCorpus();

  auto single = PolicyServer::Create({.engine = EngineKind::kSql});
  ASSERT_TRUE(single.ok());
  std::vector<int64_t> single_ids;
  for (const p3p::Policy& policy : corpus) {
    auto id = single.value()->InstallPolicy(policy);
    ASSERT_TRUE(id.ok());
    single_ids.push_back(id.value());
  }

  auto tier = ShardedPolicyServer::Create(TierOptions(4));
  ASSERT_TRUE(tier.ok()) << tier.status().message();
  std::vector<int64_t> global_ids;
  for (const p3p::Policy& policy : corpus) {
    auto id = tier.value()->InstallPolicy(policy);
    ASSERT_TRUE(id.ok()) << id.status().message();
    global_ids.push_back(id.value());
  }
  // Global ids are unique and decode to a valid shard.
  std::set<int64_t> unique(global_ids.begin(), global_ids.end());
  EXPECT_EQ(unique.size(), corpus.size());

  auto single_pref = single.value()->CompilePreference(
      JrcPreference(PreferenceLevel::kHigh));
  ASSERT_TRUE(single_pref.ok());
  auto tier_pref =
      tier.value()->CompilePreference(JrcPreference(PreferenceLevel::kHigh));
  ASSERT_TRUE(tier_pref.ok());

  for (size_t i = 0; i < corpus.size(); ++i) {
    auto expected = single.value()->MatchPolicyId(single_pref.value(),
                                                  single_ids[i]);
    ASSERT_TRUE(expected.ok());
    auto got =
        tier.value()->MatchPolicyId(tier_pref.value(), global_ids[i]);
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(got.value().behavior, expected.value().behavior)
        << corpus[i].name;
    EXPECT_EQ(got.value().policy_id, global_ids[i]);
  }

  // Shard policy counts sum to the corpus; every install published.
  size_t total = 0;
  uint64_t publishes = 0;
  for (size_t k = 0; k < tier.value()->shard_count(); ++k) {
    total += tier.value()->ShardPolicyCount(k);
    publishes += tier.value()->ShardPublishes(k);
  }
  EXPECT_EQ(total, corpus.size());
  EXPECT_EQ(publishes, corpus.size());
  EXPECT_EQ(tier.value()->GlobalPolicyIds().size(), corpus.size());
  // Epoch: initial 1 + one bump per install.
  EXPECT_EQ(tier.value()->catalog_epoch(), 1 + corpus.size());
}

TEST(ServingTierTest, MatchUriResolvesAcrossShards) {
  const std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  auto tier = ShardedPolicyServer::Create(TierOptions(3));
  ASSERT_TRUE(tier.ok());
  auto pref =
      tier.value()->CompilePreference(JrcPreference(PreferenceLevel::kMedium));
  ASSERT_TRUE(pref.ok());

  // No reference file yet: same contract as the single server.
  EXPECT_FALSE(tier.value()->MatchUri(pref.value(), "/x").ok());

  for (const p3p::Policy& policy : corpus) {
    ASSERT_TRUE(tier.value()->InstallPolicy(policy).ok());
  }
  ASSERT_TRUE(tier.value()
                  ->InstallReferenceFile(workload::CorpusReferenceFile(corpus))
                  .ok());

  auto single = PolicyServer::Create({.engine = EngineKind::kSql});
  ASSERT_TRUE(single.ok());
  for (const p3p::Policy& policy : corpus) {
    ASSERT_TRUE(single.value()->InstallPolicy(policy).ok());
  }
  ASSERT_TRUE(single.value()
                  ->InstallReferenceFile(workload::CorpusReferenceFile(corpus))
                  .ok());
  auto single_pref = single.value()->CompilePreference(
      JrcPreference(PreferenceLevel::kMedium));
  ASSERT_TRUE(single_pref.ok());

  for (const p3p::Policy& policy : corpus) {
    const std::string path = "/" + policy.name + "/index.html";
    auto expected = single.value()->MatchUri(single_pref.value(), path);
    ASSERT_TRUE(expected.ok());
    auto got = tier.value()->MatchUri(pref.value(), path);
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_TRUE(got.value().policy_found) << path;
    EXPECT_EQ(got.value().behavior, expected.value().behavior) << path;

    auto by_about = tier.value()->FindPolicyIdByAbout("#" + policy.name);
    ASSERT_TRUE(by_about.has_value()) << policy.name;
    EXPECT_EQ(got.value().policy_id, *by_about) << path;
  }

  // A path no POLICY-REF covers resolves to the no-policy result.
  auto miss = tier.value()->MatchUri(pref.value(), "/definitely/not/covered");
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss.value().policy_found);
  EXPECT_EQ(miss.value().behavior, kNoPolicyBehavior);
}

TEST(ServingTierTest, HealthzAndMetricsExposeShards) {
  const std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  auto tier = ShardedPolicyServer::Create(TierOptions(2));
  ASSERT_TRUE(tier.ok());
  for (const p3p::Policy& policy : corpus) {
    ASSERT_TRUE(tier.value()->InstallPolicy(policy).ok());
  }
  auto pref =
      tier.value()->CompilePreference(JrcPreference(PreferenceLevel::kLow));
  ASSERT_TRUE(pref.ok());
  for (int64_t id : tier.value()->GlobalPolicyIds()) {
    ASSERT_TRUE(tier.value()->MatchPolicyId(pref.value(), id).ok());
  }

  const std::string healthz = tier.value()->RenderHealthzJson();
  EXPECT_NE(healthz.find("\"status\":\"ok\""), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"catalog_epoch\":"), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"shards\":[{\"shard\":0,"), std::string::npos)
      << healthz;
  EXPECT_NE(healthz.find("{\"shard\":1,"), std::string::npos) << healthz;
  EXPECT_NE(healthz.find("\"policies\":" + std::to_string(corpus.size())),
            std::string::npos)
      << healthz;

  const std::string metrics = tier.value()->RenderMetricsText();
  EXPECT_NE(metrics.find("p3p_shard_0_policies"), std::string::npos);
  EXPECT_NE(metrics.find("p3p_shard_1_policies"), std::string::npos);
  EXPECT_NE(metrics.find("p3p_shard_0_matches_total"), std::string::npos);
  EXPECT_NE(metrics.find("p3p_installs_total"), std::string::npos);
}

// Durable tier: reopening from the same storage directory must reproduce
// the global ids and the match outcomes exactly (deterministic replay
// through the same shard routing).
TEST(ServingTierTest, RecoversFromDurableStore) {
  const std::string dir = TestDir("recover");
  const std::vector<p3p::Policy> corpus = workload::FortuneCorpus();

  std::vector<int64_t> installed_ids;
  std::vector<std::string> behaviors;
  {
    ShardedPolicyServer::Options o = TierOptions(4);
    o.storage_path = dir;
    auto tier = ShardedPolicyServer::Create(o);
    ASSERT_TRUE(tier.ok()) << tier.status().message();
    ASSERT_NE(tier.value()->durable_store(), nullptr);
    for (const p3p::Policy& policy : corpus) {
      auto id = tier.value()->InstallPolicy(policy);
      ASSERT_TRUE(id.ok());
      installed_ids.push_back(id.value());
    }
    ASSERT_TRUE(
        tier.value()
            ->InstallReferenceFile(workload::CorpusReferenceFile(corpus))
            .ok());
    auto pref = tier.value()->CompilePreference(
        JrcPreference(PreferenceLevel::kHigh));
    ASSERT_TRUE(pref.ok());
    for (int64_t id : installed_ids) {
      auto r = tier.value()->MatchPolicyId(pref.value(), id);
      ASSERT_TRUE(r.ok());
      behaviors.push_back(r.value().behavior);
    }
  }
  {
    ShardedPolicyServer::Options o = TierOptions(4);
    o.storage_path = dir;
    auto tier = ShardedPolicyServer::Create(o);
    ASSERT_TRUE(tier.ok()) << tier.status().message();
    std::vector<int64_t> recovered = tier.value()->GlobalPolicyIds();
    std::vector<int64_t> expected = installed_ids;
    std::sort(recovered.begin(), recovered.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(recovered, expected);
    auto pref = tier.value()->CompilePreference(
        JrcPreference(PreferenceLevel::kHigh));
    ASSERT_TRUE(pref.ok());
    for (size_t i = 0; i < installed_ids.size(); ++i) {
      auto r = tier.value()->MatchPolicyId(pref.value(), installed_ids[i]);
      ASSERT_TRUE(r.ok()) << installed_ids[i];
      EXPECT_EQ(r.value().behavior, behaviors[i]);
    }
    // The reference file came back too.
    auto p = tier.value()->MatchUri(pref.value(),
                                    "/" + corpus[0].name + "/index.html");
    ASSERT_TRUE(p.ok());
    EXPECT_TRUE(p.value().policy_found);
  }
  std::filesystem::remove_all(dir);
}

// Matches racing installs across shards: every outcome must equal the
// single-threaded reference outcome for the id it matched (policies are
// immutable once installed; re-versioning happens under distinct names
// in the torn-epoch test below).
TEST(ServingTierTest, ConcurrentInstallsAndMatchesAcrossShards) {
  const std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  auto tier = ShardedPolicyServer::Create(TierOptions(4));
  ASSERT_TRUE(tier.ok());

  // Seed half the corpus so matchers have work from the start.
  const size_t seed_count = corpus.size() / 2;
  std::vector<int64_t> ids;
  for (size_t i = 0; i < seed_count; ++i) {
    auto id = tier.value()->InstallPolicy(corpus[i]);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  auto pref =
      tier.value()->CompilePreference(JrcPreference(PreferenceLevel::kHigh));
  ASSERT_TRUE(pref.ok());
  std::vector<std::string> expected;
  for (int64_t id : ids) {
    auto r = tier.value()->MatchPolicyId(pref.value(), id);
    ASSERT_TRUE(r.ok());
    expected.push_back(r.value().behavior);
  }

  std::atomic<int> errors{0};
  std::thread installer([&] {
    for (size_t i = seed_count; i < corpus.size(); ++i) {
      if (!tier.value()->InstallPolicy(corpus[i]).ok()) ++errors;
    }
  });
  std::vector<std::thread> matchers;
  for (int t = 0; t < 4; ++t) {
    matchers.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        size_t pick = static_cast<size_t>(t * 31 + i) % ids.size();
        auto r = tier.value()->MatchPolicyId(pref.value(), ids[pick]);
        if (!r.ok() || r.value().behavior != expected[pick]) ++errors;
      }
    });
  }
  installer.join();
  for (std::thread& t : matchers) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(tier.value()->GlobalPolicyIds().size(), corpus.size());
}

// The torn-epoch stress: one name is re-installed over and over, flipping
// between two variants with *different* match outcomes, while matchers
// resolve the name and match continuously. Every observed behavior must be
// one of the two variants' legitimate outcomes — a half-installed catalog
// (policy row present but statements missing, or version map ahead of the
// evidence tables) would surface as an error or a third behavior. The
// schedule is seeded by fixed stride arithmetic so failures reproduce.
TEST(ServingTierTest, TornEpochNeverObserved) {
  const std::vector<p3p::Policy> corpus = workload::FortuneCorpus();
  auto probe = PolicyServer::Create({.engine = EngineKind::kSql});
  ASSERT_TRUE(probe.ok());
  auto probe_pref = probe.value()->CompilePreference(
      JrcPreference(PreferenceLevel::kHigh));
  ASSERT_TRUE(probe_pref.ok());

  // Find two corpus policies with different outcomes under the preference;
  // they become the two variants of the churned name.
  std::optional<p3p::Policy> variant_a, variant_b;
  std::string behavior_a, behavior_b;
  for (const p3p::Policy& policy : corpus) {
    auto id = probe.value()->InstallPolicy(policy);
    ASSERT_TRUE(id.ok());
    auto r = probe.value()->MatchPolicyId(probe_pref.value(), id.value());
    ASSERT_TRUE(r.ok());
    if (!variant_a.has_value()) {
      variant_a = policy;
      behavior_a = r.value().behavior;
    } else if (r.value().behavior != behavior_a) {
      variant_b = policy;
      behavior_b = r.value().behavior;
      break;
    }
  }
  ASSERT_TRUE(variant_b.has_value())
      << "corpus has no pair of policies with distinct outcomes";
  variant_a->name = "churn";
  variant_b->name = "churn";

  auto tier = ShardedPolicyServer::Create(TierOptions(2));
  ASSERT_TRUE(tier.ok());
  ASSERT_TRUE(tier.value()->InstallPolicy(*variant_a).ok());
  p3p::ReferenceFile rf;
  p3p::PolicyRef ref;
  ref.about = "/P3P/policies.xml#churn";
  ref.includes = {"/churn/*"};
  rf.refs.push_back(ref);
  ASSERT_TRUE(tier.value()->InstallReferenceFile(rf).ok());

  auto pref =
      tier.value()->CompilePreference(JrcPreference(PreferenceLevel::kHigh));
  ASSERT_TRUE(pref.ok());

  // Sanity: the two variants produce their expected behaviors on the tier.
  {
    auto r = tier.value()->MatchUri(pref.value(), "/churn/index.html");
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value().behavior, behavior_a);
  }

  constexpr int kInstalls = 60;
  constexpr int kMatcherThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::atomic<int> torn{0};
  std::atomic<uint64_t> observed_a{0};
  std::atomic<uint64_t> observed_b{0};

  std::thread installer([&] {
    for (int i = 0; i < kInstalls; ++i) {
      const p3p::Policy& next = (i % 2 == 0) ? *variant_b : *variant_a;
      if (!tier.value()->InstallPolicy(next).ok()) ++errors;
    }
    stop.store(true);
  });
  std::vector<std::thread> matchers;
  for (int t = 0; t < kMatcherThreads; ++t) {
    matchers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto r = tier.value()->MatchUri(pref.value(), "/churn/index.html");
        if (!r.ok() || !r.value().policy_found) {
          ++errors;
        } else if (r.value().behavior == behavior_a) {
          ++observed_a;
        } else if (r.value().behavior == behavior_b) {
          ++observed_b;
        } else {
          ++torn;  // a behavior neither variant produces: torn catalog
        }
      }
    });
  }
  installer.join();
  for (std::thread& t : matchers) t.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(torn.load(), 0);
  EXPECT_GT(observed_a.load() + observed_b.load(), 0u);
  // After the final install (kInstalls even: last installed is variant_a)
  // every new match sees variant_a's behavior.
  auto final_match =
      tier.value()->MatchUri(pref.value(), "/churn/index.html");
  ASSERT_TRUE(final_match.ok());
  EXPECT_EQ(final_match.value().behavior, behavior_a);
}

}  // namespace
}  // namespace p3pdb::server
