// Tests for the shredders: Figure 8 schema generation, Figure 10
// population, the Figure 14 optimized schema, and the Figure 16 reference
// tables.

#include <gtest/gtest.h>

#include "p3p/augment.h"
#include "p3p/policy_xml.h"
#include "shredder/element_spec.h"
#include "shredder/optimized_schema.h"
#include "shredder/reference_schema.h"
#include "shredder/simple_schema.h"
#include "sqldb/database.h"
#include "workload/paper_examples.h"

namespace p3pdb::shredder {
namespace {

using sqldb::Database;
using sqldb::QueryResult;

int64_t CountRows(Database* db, const std::string& table) {
  auto result = db->Execute("SELECT COUNT(*) FROM " + table);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? result.value().rows[0][0].AsInteger() : -1;
}

TEST(ElementSpecTest, NameMapping) {
  EXPECT_EQ(ElementToTableName("POLICY"), "Policy");
  EXPECT_EQ(ElementToTableName("DATA-GROUP"), "DataGroup");
  EXPECT_EQ(ElementToTableName("individual-decision"), "IndividualDecision");
  EXPECT_EQ(ElementToTableName("stated-purpose"), "StatedPurpose");
  EXPECT_EQ(ElementToIdColumn("DATA-GROUP"), "datagroup_id");
  EXPECT_EQ(ElementToIdColumn("Policy"), "policy_id");
}

TEST(ElementSpecTest, TreeShape) {
  const ElementSpec& policy = PolicyElementSpec();
  EXPECT_EQ(policy.element_name(), "POLICY");
  const ElementSpec* statement = policy.FindChild("STATEMENT");
  ASSERT_NE(statement, nullptr);
  const ElementSpec* purpose = statement->FindChild("PURPOSE");
  ASSERT_NE(purpose, nullptr);
  // 12 purposes + extension.
  EXPECT_EQ(purpose->children().size(), 13u);
  ASSERT_NE(purpose->FindChild("contact"), nullptr);
  EXPECT_EQ(purpose->FindChild("contact")->table_name(), "Contact");
  // The required attribute has an effective default.
  ASSERT_EQ(purpose->FindChild("contact")->attributes().size(), 1u);
  EXPECT_EQ(purpose->FindChild("contact")->attributes()[0].default_value,
            "always");
  // Extension tables are disambiguated per parent.
  EXPECT_EQ(purpose->FindChild("extension")->table_name(),
            "PurposeExtension");
  const ElementSpec* recipient = statement->FindChild("RECIPIENT");
  ASSERT_NE(recipient, nullptr);
  EXPECT_EQ(recipient->FindChild("extension")->table_name(),
            "RecipientExtension");
}

TEST(SimpleSchemaTest, OneTablePerElement) {
  GeneratedSchema schema = GenerateSimpleSchema();
  // Figure 8: one table per element in the spec tree.
  EXPECT_EQ(schema.tables.size(), PolicyElementSpec().SubtreeSize());
  EXPECT_GT(schema.tables.size(), 50u);
  // Every non-root table has an FK index.
  EXPECT_EQ(schema.indexes.size(), schema.tables.size() - 1);
}

TEST(SimpleSchemaTest, DataTableShapeMatchesFigure9) {
  GeneratedSchema schema = GenerateSimpleSchema();
  const sqldb::TableSchema* data = nullptr;
  for (const auto& t : schema.tables) {
    if (t.name() == "Data") data = &t;
  }
  ASSERT_NE(data, nullptr);
  // Figure 9: data_id, FK of the parent (datagroup_id, statement_id,
  // policy_id), and the attribute columns.
  EXPECT_TRUE(data->ColumnIndex("data_id").has_value());
  EXPECT_TRUE(data->ColumnIndex("datagroup_id").has_value());
  EXPECT_TRUE(data->ColumnIndex("statement_id").has_value());
  EXPECT_TRUE(data->ColumnIndex("policy_id").has_value());
  EXPECT_TRUE(data->ColumnIndex("ref").has_value());
  EXPECT_TRUE(data->ColumnIndex("optional").has_value());
  // PK = id + FK (Figure 8c).
  EXPECT_EQ(data->primary_key().size(), 4u);
  EXPECT_EQ(data->primary_key()[0], "data_id");
  ASSERT_EQ(data->foreign_keys().size(), 1u);
  EXPECT_EQ(data->foreign_keys()[0].referenced_table, "DataGroup");
}

TEST(SimpleSchemaTest, ShredVolga) {
  Database db;
  ASSERT_TRUE(InstallSimpleSchema(&db).ok());
  SimpleShredder shredder(&db);
  std::unique_ptr<xml::Element> dom =
      p3p::PolicyToXml(workload::VolgaPolicy());
  auto policy_id = shredder.ShredPolicy(*dom);
  ASSERT_TRUE(policy_id.ok()) << policy_id.status();

  EXPECT_EQ(CountRows(&db, "Policy"), 1);
  EXPECT_EQ(CountRows(&db, "Statement"), 2);
  EXPECT_EQ(CountRows(&db, "Purpose"), 2);
  EXPECT_EQ(CountRows(&db, "Recipient"), 2);
  EXPECT_EQ(CountRows(&db, "Current"), 1);
  EXPECT_EQ(CountRows(&db, "IndividualDecision"), 1);
  EXPECT_EQ(CountRows(&db, "Contact"), 1);
  EXPECT_EQ(CountRows(&db, "Ours"), 2);
  EXPECT_EQ(CountRows(&db, "Same"), 1);
  EXPECT_EQ(CountRows(&db, "Retention"), 2);
  EXPECT_EQ(CountRows(&db, "StatedPurpose"), 1);
  EXPECT_EQ(CountRows(&db, "BusinessPractices"), 1);
  EXPECT_EQ(CountRows(&db, "DataGroup"), 2);
  EXPECT_EQ(CountRows(&db, "Data"), 5);
  EXPECT_EQ(CountRows(&db, "Categories"), 2);  // two miscdata items
  EXPECT_EQ(CountRows(&db, "Purchase"), 2);
  EXPECT_EQ(CountRows(&db, "Consequence"), 2);
  EXPECT_EQ(CountRows(&db, "Access"), 1);
}

TEST(SimpleSchemaTest, EffectiveDefaultsStored) {
  Database db;
  ASSERT_TRUE(InstallSimpleSchema(&db).ok());
  SimpleShredder shredder(&db);
  std::unique_ptr<xml::Element> dom =
      p3p::PolicyToXml(workload::VolgaPolicy());
  ASSERT_TRUE(shredder.ShredPolicy(*dom).ok());
  // <current/> carries no required attribute; the stored value is the
  // effective default "always".
  auto current = db.Execute("SELECT required FROM Current");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current.value().rows[0][0].AsText(), "always");
  // <contact required="opt-in"/> stores the explicit value.
  auto contact = db.Execute("SELECT required FROM Contact");
  ASSERT_TRUE(contact.ok());
  EXPECT_EQ(contact.value().rows[0][0].AsText(), "opt-in");
  // <DATA> without optional stores "no".
  auto data = db.Execute("SELECT DISTINCT optional FROM Data");
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data.value().rows.size(), 1u);
  EXPECT_EQ(data.value().rows[0][0].AsText(), "no");
}

TEST(SimpleSchemaTest, MultiplePoliciesGetDistinctIds) {
  Database db;
  ASSERT_TRUE(InstallSimpleSchema(&db).ok());
  SimpleShredder shredder(&db);
  std::unique_ptr<xml::Element> dom =
      p3p::PolicyToXml(workload::VolgaPolicy());
  auto id1 = shredder.ShredPolicy(*dom);
  auto id2 = shredder.ShredPolicy(*dom);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(id1.value(), id2.value());
  EXPECT_EQ(CountRows(&db, "Policy"), 2);
  EXPECT_EQ(CountRows(&db, "Statement"), 4);
}

TEST(SimpleSchemaTest, AugmentedDomAddsCategoryRows) {
  Database db;
  ASSERT_TRUE(InstallSimpleSchema(&db).ok());
  SimpleShredder shredder(&db);
  std::unique_ptr<xml::Element> dom =
      p3p::PolicyToXml(workload::VolgaPolicy());
  std::unique_ptr<xml::Element> augmented = p3p::AugmentPolicyXml(*dom);
  ASSERT_TRUE(shredder.ShredPolicy(*augmented).ok());
  // user.name brings physical+demographic, postal the same, email online...
  EXPECT_GT(CountRows(&db, "Categories"), 2);
  EXPECT_GE(CountRows(&db, "Physical"), 1);
  EXPECT_GE(CountRows(&db, "Online"), 1);
}

TEST(OptimizedSchemaTest, TableSetMatchesFigure14) {
  Database db;
  ASSERT_TRUE(InstallOptimizedSchema(&db).ok());
  // Six tables: Policy, Statement, Purpose, Recipient, Data, Categories.
  EXPECT_EQ(db.TableCount(), 6u);
  for (const char* t : {"Policy", "Statement", "Purpose", "Recipient",
                        "Data", "Categories"}) {
    EXPECT_NE(db.LookupTable(t), nullptr) << t;
  }
  // Purpose has no id column of its own (§5.4).
  const sqldb::Table* purpose = db.LookupTable("Purpose");
  EXPECT_FALSE(purpose->schema().ColumnIndex("purpose_id").has_value());
  EXPECT_TRUE(purpose->schema().ColumnIndex("purpose").has_value());
  EXPECT_TRUE(purpose->schema().ColumnIndex("required").has_value());
  // Retention and consequence fold into Statement.
  const sqldb::Table* statement = db.LookupTable("Statement");
  EXPECT_TRUE(statement->schema().ColumnIndex("retention").has_value());
  EXPECT_TRUE(statement->schema().ColumnIndex("consequence").has_value());
}

TEST(OptimizedSchemaTest, ShredVolga) {
  Database db;
  ASSERT_TRUE(InstallOptimizedSchema(&db).ok());
  OptimizedShredder shredder(&db);
  auto policy_id = shredder.ShredPolicy(workload::VolgaPolicy());
  ASSERT_TRUE(policy_id.ok()) << policy_id.status();
  EXPECT_EQ(CountRows(&db, "Policy"), 1);
  EXPECT_EQ(CountRows(&db, "Statement"), 2);
  EXPECT_EQ(CountRows(&db, "Purpose"), 3);
  EXPECT_EQ(CountRows(&db, "Recipient"), 3);
  EXPECT_EQ(CountRows(&db, "Data"), 5);
  EXPECT_EQ(CountRows(&db, "Categories"), 2);

  auto retention = db.Execute(
      "SELECT retention FROM Statement ORDER BY statement_id");
  ASSERT_TRUE(retention.ok());
  EXPECT_EQ(retention.value().rows[0][0].AsText(), "stated-purpose");
  EXPECT_EQ(retention.value().rows[1][0].AsText(), "business-practices");

  auto required = db.Execute(
      "SELECT required FROM Purpose WHERE purpose = 'individual-decision'");
  ASSERT_TRUE(required.ok());
  EXPECT_EQ(required.value().rows[0][0].AsText(), "opt-in");
}

TEST(OptimizedSchemaTest, ForeignKeysEnforced) {
  Database db;
  ASSERT_TRUE(InstallOptimizedSchema(&db).ok());
  // A Purpose row for a nonexistent statement must be rejected.
  auto bad = db.Execute(
      "INSERT INTO Purpose VALUES (1, 1, 'current', 'always')");
  EXPECT_FALSE(bad.ok());
}

TEST(ReferenceSchemaTest, UriPatternToLike) {
  EXPECT_EQ(UriPatternToLike("/*"), "/%");
  EXPECT_EQ(UriPatternToLike("/catalog/*.html"), "/catalog/%.html");
  EXPECT_EQ(UriPatternToLike("/100%_done"), "/100\\%\\_done");
  EXPECT_EQ(UriPatternToLike("back\\slash"), "back\\\\slash");
}

TEST(ReferenceSchemaTest, RequiresPolicyTable) {
  Database db;
  EXPECT_FALSE(InstallReferenceSchema(&db).ok());
}

TEST(ReferenceSchemaTest, ShredAndQuery) {
  Database db;
  ASSERT_TRUE(InstallOptimizedSchema(&db).ok());
  ASSERT_TRUE(InstallReferenceSchema(&db).ok());
  OptimizedShredder policy_shredder(&db);
  auto policy_id = policy_shredder.ShredPolicy(workload::VolgaPolicy());
  ASSERT_TRUE(policy_id.ok());

  ReferenceShredder shredder(&db);
  std::map<std::string, int64_t> resolution = {
      {"/P3P/policies.xml#volga", policy_id.value()}};
  auto meta = shredder.ShredReferenceFile(workload::VolgaReferenceFile(),
                                          resolution);
  ASSERT_TRUE(meta.ok()) << meta.status();
  EXPECT_EQ(CountRows(&db, "Meta"), 1);
  EXPECT_EQ(CountRows(&db, "Policyref"), 1);
  EXPECT_EQ(CountRows(&db, "Include"), 1);
  EXPECT_EQ(CountRows(&db, "Exclude"), 1);
  EXPECT_EQ(CountRows(&db, "CookieInclude"), 1);

  // LIKE-based coverage check straight in SQL.
  auto covered = db.Execute(
      "SELECT policy_id FROM Policyref WHERE EXISTS (SELECT * FROM Include "
      "WHERE Include.policyref_id = Policyref.policyref_id AND "
      "'/catalog/books' LIKE Include.pattern ESCAPE '\\')");
  ASSERT_TRUE(covered.ok()) << covered.status();
  ASSERT_EQ(covered.value().rows.size(), 1u);
  EXPECT_EQ(covered.value().rows[0][0].AsInteger(), policy_id.value());
}

TEST(ReferenceSchemaTest, UnresolvedAboutStoresNull) {
  Database db;
  ASSERT_TRUE(InstallOptimizedSchema(&db).ok());
  ASSERT_TRUE(InstallReferenceSchema(&db).ok());
  ReferenceShredder shredder(&db);
  auto meta =
      shredder.ShredReferenceFile(workload::VolgaReferenceFile(), {});
  ASSERT_TRUE(meta.ok()) << meta.status();
  auto rows = db.Execute(
      "SELECT * FROM Policyref WHERE policy_id IS NULL");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().rows.size(), 1u);
}

}  // namespace
}  // namespace p3pdb::shredder
