// Tests for name resolution and semantic analysis: scoping, shadowing,
// aggregate placement rules, and the error taxonomy the binder reports.

#include <gtest/gtest.h>

#include "sqldb/database.h"

namespace p3pdb::sqldb {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(
                      "CREATE TABLE outer_t (x INTEGER, y INTEGER);"
                      "CREATE TABLE inner_t (x INTEGER, z INTEGER);"
                      "INSERT INTO outer_t VALUES (1, 10), (2, 20);"
                      "INSERT INTO inner_t VALUES (1, 100), (3, 300);")
                    .ok());
  }

  Database db_;
};

TEST_F(BinderTest, InnermostScopeWins) {
  // `x` inside the subquery binds to inner_t.x, not outer_t.x: the
  // subquery finds inner rows with x = 1 or 3, so EXISTS is true for every
  // outer row regardless of the outer x.
  auto result = db_.Execute(
      "SELECT COUNT(*) FROM outer_t WHERE EXISTS "
      "(SELECT * FROM inner_t WHERE x = 3)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().rows[0][0].AsInteger(), 2);
}

TEST_F(BinderTest, QualifiedOuterReference) {
  auto result = db_.Execute(
      "SELECT COUNT(*) FROM outer_t WHERE EXISTS "
      "(SELECT * FROM inner_t WHERE inner_t.x = outer_t.x)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().rows[0][0].AsInteger(), 1);  // only x = 1 joins
}

TEST_F(BinderTest, UnqualifiedFallsBackToOuterScope) {
  // `y` does not exist in inner_t, so it resolves one scope up.
  auto result = db_.Execute(
      "SELECT COUNT(*) FROM outer_t WHERE EXISTS "
      "(SELECT * FROM inner_t WHERE y = 10)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().rows[0][0].AsInteger(), 1);
}

TEST_F(BinderTest, AliasShadowsTableName) {
  auto result = db_.Execute(
      "SELECT COUNT(*) FROM outer_t o WHERE o.x = 1");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().rows[0][0].AsInteger(), 1);
  // The original name is no longer addressable once aliased.
  EXPECT_FALSE(
      db_.Execute("SELECT COUNT(*) FROM outer_t o WHERE outer_t.x = 1")
          .ok());
}

TEST_F(BinderTest, DuplicateAliasRejected) {
  auto result = db_.Execute("SELECT * FROM outer_t a, inner_t a");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinderTest, SelfJoinWithAliases) {
  auto result = db_.Execute(
      "SELECT COUNT(*) FROM outer_t a, outer_t b WHERE a.x < b.x");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().rows[0][0].AsInteger(), 1);  // (1,2)
}

TEST_F(BinderTest, AggregateInWhereRejected) {
  auto result =
      db_.Execute("SELECT x FROM outer_t WHERE COUNT(*) > 1 GROUP BY x");
  EXPECT_FALSE(result.ok());
}

TEST_F(BinderTest, StarWithGroupByRejected) {
  EXPECT_FALSE(db_.Execute("SELECT * FROM outer_t GROUP BY x").ok());
}

TEST_F(BinderTest, NestedAggregateRejected) {
  EXPECT_FALSE(db_.Execute("SELECT COUNT(MAX(x)) FROM outer_t").ok());
}

TEST_F(BinderTest, StarWithoutFromRejected) {
  EXPECT_FALSE(db_.Execute("SELECT *").ok());
}

TEST_F(BinderTest, OrderByOrdinalOutOfRange) {
  auto result = db_.Execute("SELECT x FROM outer_t ORDER BY 2");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinderTest, OrderByAggregateAliasInGroupedQuery) {
  auto result = db_.Execute(
      "SELECT x, COUNT(*) AS n FROM outer_t GROUP BY x ORDER BY n DESC");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().rows.size(), 2u);
}

TEST_F(BinderTest, OrderByUnrelatedExprInGroupedQueryRejected) {
  EXPECT_FALSE(
      db_.Execute("SELECT x FROM outer_t GROUP BY x ORDER BY y").ok());
}

TEST_F(BinderTest, GroupingItemMustMatchGroupByText) {
  EXPECT_TRUE(
      db_.Execute("SELECT x, COUNT(*) FROM outer_t GROUP BY x").ok());
  EXPECT_FALSE(
      db_.Execute("SELECT y, COUNT(*) FROM outer_t GROUP BY x").ok());
}

TEST_F(BinderTest, DepthCountsSelectNesting) {
  Database shallow(Database::Options{.max_subquery_depth = 1,
                                     .enforce_foreign_keys = false});
  ASSERT_TRUE(shallow.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  EXPECT_TRUE(shallow.Execute("SELECT * FROM t").ok());
  auto nested =
      shallow.Execute("SELECT * FROM t WHERE EXISTS (SELECT * FROM t)");
  ASSERT_FALSE(nested.ok());
  EXPECT_EQ(nested.status().code(), StatusCode::kLimitExceeded);
}

TEST_F(BinderTest, ErrorsNameTheMissingObject) {
  auto missing_table = db_.Execute("SELECT * FROM nothere");
  ASSERT_FALSE(missing_table.ok());
  EXPECT_NE(missing_table.status().message().find("nothere"),
            std::string::npos);
  auto missing_column = db_.Execute("SELECT nope FROM outer_t");
  ASSERT_FALSE(missing_column.ok());
  EXPECT_NE(missing_column.status().message().find("nope"),
            std::string::npos);
}

TEST_F(BinderTest, InsertArityAndUnknownColumn) {
  EXPECT_FALSE(db_.Execute("INSERT INTO outer_t VALUES (1)").ok());
  EXPECT_FALSE(
      db_.Execute("INSERT INTO outer_t (x, nope) VALUES (1, 2)").ok());
  EXPECT_TRUE(db_.Execute("INSERT INTO outer_t (y, x) VALUES (30, 3)").ok());
  auto check = db_.Execute("SELECT y FROM outer_t WHERE x = 3");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check.value().rows[0][0].AsInteger(), 30);
}

TEST_F(BinderTest, InsertPartialColumnListFillsNulls) {
  ASSERT_TRUE(db_.Execute("INSERT INTO outer_t (x) VALUES (9)").ok());
  auto check = db_.Execute("SELECT y FROM outer_t WHERE x = 9");
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check.value().rows[0][0].is_null());
}

TEST_F(BinderTest, ColumnRefsInInsertValuesRejected) {
  EXPECT_FALSE(db_.Execute("INSERT INTO outer_t VALUES (x, 1)").ok());
}

}  // namespace
}  // namespace p3pdb::sqldb
