// End-to-end tests for the sqldb engine: DDL, DML, correlated subqueries,
// aggregates, NULL semantics, indexes, and the complexity limit.

#include <gtest/gtest.h>

#include "sqldb/database.h"
#include "sqldb/executor.h"

namespace p3pdb::sqldb {
namespace {

class SqldbTest : public ::testing::Test {
 protected:
  QueryResult MustExecute(std::string_view sql) {
    auto result = db_.Execute(sql);
    EXPECT_TRUE(result.ok()) << result.status() << "\nSQL: " << sql;
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  void MustScript(std::string_view sql) {
    Status st = db_.ExecuteScript(sql);
    ASSERT_TRUE(st.ok()) << st;
  }

  Database db_;
};

TEST_F(SqldbTest, CreateInsertSelect) {
  MustScript(
      "CREATE TABLE t (a INTEGER, b VARCHAR(10));"
      "INSERT INTO t VALUES (1, 'x'), (2, 'y');");
  QueryResult r = MustExecute("SELECT * FROM t ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.columns[0], "a");
  EXPECT_EQ(r.rows[0][0].AsInteger(), 1);
  EXPECT_EQ(r.rows[1][1].AsText(), "y");
}

TEST_F(SqldbTest, WhereFilters) {
  MustScript(
      "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2), (3);");
  QueryResult r = MustExecute("SELECT a FROM t WHERE a >= 2 ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInteger(), 2);
}

TEST_F(SqldbTest, ComparisonOperators) {
  MustScript("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (5);");
  EXPECT_EQ(MustExecute("SELECT a FROM t WHERE a = 5").rows.size(), 1u);
  EXPECT_EQ(MustExecute("SELECT a FROM t WHERE a <> 5").rows.size(), 0u);
  EXPECT_EQ(MustExecute("SELECT a FROM t WHERE a < 6").rows.size(), 1u);
  EXPECT_EQ(MustExecute("SELECT a FROM t WHERE a <= 5").rows.size(), 1u);
  EXPECT_EQ(MustExecute("SELECT a FROM t WHERE a > 5").rows.size(), 0u);
  EXPECT_EQ(MustExecute("SELECT a FROM t WHERE a >= 5").rows.size(), 1u);
}

TEST_F(SqldbTest, NullThreeValuedLogic) {
  MustScript(
      "CREATE TABLE t (a INTEGER, b VARCHAR(5));"
      "INSERT INTO t VALUES (1, 'x'), (NULL, 'y');");
  // NULL = NULL is not TRUE; the NULL row never matches an equality.
  EXPECT_EQ(MustExecute("SELECT * FROM t WHERE a = 1").rows.size(), 1u);
  EXPECT_EQ(MustExecute("SELECT * FROM t WHERE a <> 1").rows.size(), 0u);
  EXPECT_EQ(MustExecute("SELECT * FROM t WHERE a IS NULL").rows.size(), 1u);
  EXPECT_EQ(MustExecute("SELECT * FROM t WHERE a IS NOT NULL").rows.size(),
            1u);
  // NULL OR TRUE is TRUE; NULL AND TRUE is NULL (filtered out).
  EXPECT_EQ(
      MustExecute("SELECT * FROM t WHERE a = 99 OR b = 'y'").rows.size(), 1u);
  EXPECT_EQ(MustExecute("SELECT * FROM t WHERE a = a AND b = 'y'").rows.size(),
            0u);
}

TEST_F(SqldbTest, InListSemantics) {
  MustScript(
      "CREATE TABLE t (p VARCHAR(20));"
      "INSERT INTO t VALUES ('admin'), ('contact'), (NULL);");
  EXPECT_EQ(
      MustExecute("SELECT p FROM t WHERE p IN ('admin', 'telemarketing')")
          .rows.size(),
      1u);
  // NOT IN with a NULL operand row yields NULL, not TRUE.
  EXPECT_EQ(MustExecute("SELECT p FROM t WHERE p NOT IN ('admin')")
                .rows.size(),
            1u);
}

TEST_F(SqldbTest, LikeMatching) {
  MustScript(
      "CREATE TABLE u (uri VARCHAR(100));"
      "INSERT INTO u VALUES ('http://volga.example.com/catalog/books');");
  EXPECT_EQ(
      MustExecute("SELECT * FROM u WHERE uri LIKE 'http://%/catalog/%'")
          .rows.size(),
      1u);
  EXPECT_EQ(MustExecute("SELECT * FROM u WHERE uri LIKE '%checkout%'")
                .rows.size(),
            0u);
  EXPECT_EQ(MustExecute("SELECT * FROM u WHERE uri NOT LIKE '%checkout%'")
                .rows.size(),
            1u);
}

TEST(SqlLikeMatchTest, Wildcards) {
  EXPECT_TRUE(SqlLikeMatch("abc", "abc"));
  EXPECT_TRUE(SqlLikeMatch("abc", "a%"));
  EXPECT_TRUE(SqlLikeMatch("abc", "%c"));
  EXPECT_TRUE(SqlLikeMatch("abc", "%b%"));
  EXPECT_TRUE(SqlLikeMatch("abc", "a_c"));
  EXPECT_TRUE(SqlLikeMatch("", "%"));
  EXPECT_TRUE(SqlLikeMatch("anything", "%%"));
  EXPECT_FALSE(SqlLikeMatch("abc", "a_"));
  EXPECT_FALSE(SqlLikeMatch("abc", "b%"));
  EXPECT_FALSE(SqlLikeMatch("", "_"));
  // Backtracking case: % must retry shorter matches.
  EXPECT_TRUE(SqlLikeMatch("aXbYb", "%b"));
  EXPECT_TRUE(SqlLikeMatch("mississippi", "%iss%pi"));
}

TEST_F(SqldbTest, CrossJoinTwoTables) {
  MustScript(
      "CREATE TABLE a (x INTEGER); CREATE TABLE b (y INTEGER);"
      "INSERT INTO a VALUES (1), (2); INSERT INTO b VALUES (10), (20);");
  QueryResult r =
      MustExecute("SELECT x, y FROM a, b WHERE x = 1 ORDER BY y");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].AsInteger(), 10);
}

TEST_F(SqldbTest, JoinWithPredicate) {
  MustScript(
      "CREATE TABLE p (id INTEGER, PRIMARY KEY (id));"
      "CREATE TABLE s (pid INTEGER, v VARCHAR(5));"
      "INSERT INTO p VALUES (1), (2);"
      "INSERT INTO s VALUES (1, 'a'), (1, 'b'), (2, 'c');");
  QueryResult r = MustExecute(
      "SELECT p.id, s.v FROM p, s WHERE p.id = s.pid ORDER BY s.v");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[2][0].AsInteger(), 2);
}

TEST_F(SqldbTest, CorrelatedExists) {
  MustScript(
      "CREATE TABLE policy (policy_id INTEGER, PRIMARY KEY (policy_id));"
      "CREATE TABLE stmt (policy_id INTEGER, stmt_id INTEGER);"
      "INSERT INTO policy VALUES (1), (2);"
      "INSERT INTO stmt VALUES (1, 1);");
  QueryResult r = MustExecute(
      "SELECT policy_id FROM policy WHERE EXISTS ("
      "SELECT * FROM stmt WHERE stmt.policy_id = policy.policy_id)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInteger(), 1);
}

TEST_F(SqldbTest, NotExistsCorrelated) {
  MustScript(
      "CREATE TABLE policy (policy_id INTEGER);"
      "CREATE TABLE stmt (policy_id INTEGER);"
      "INSERT INTO policy VALUES (1), (2);"
      "INSERT INTO stmt VALUES (1);");
  QueryResult r = MustExecute(
      "SELECT policy_id FROM policy WHERE NOT EXISTS ("
      "SELECT * FROM stmt WHERE stmt.policy_id = policy.policy_id)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInteger(), 2);
}

TEST_F(SqldbTest, DeeplyNestedCorrelation) {
  // Three levels, mirroring the Figure 13 query shape where the innermost
  // table joins to its grandparent's ancestors.
  MustScript(
      "CREATE TABLE l1 (a INTEGER); CREATE TABLE l2 (a INTEGER, b INTEGER);"
      "CREATE TABLE l3 (a INTEGER, b INTEGER, c INTEGER);"
      "INSERT INTO l1 VALUES (1), (2);"
      "INSERT INTO l2 VALUES (1, 10), (2, 20);"
      "INSERT INTO l3 VALUES (1, 10, 100);");
  QueryResult r = MustExecute(
      "SELECT a FROM l1 WHERE EXISTS (SELECT * FROM l2 WHERE l2.a = l1.a AND "
      "EXISTS (SELECT * FROM l3 WHERE l3.a = l1.a AND l3.b = l2.b))");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInteger(), 1);
}

TEST_F(SqldbTest, AggregatesWithoutGroupBy) {
  MustScript(
      "CREATE TABLE t (a INTEGER);"
      "INSERT INTO t VALUES (3), (1), (NULL), (7);");
  QueryResult r =
      MustExecute("SELECT COUNT(*), COUNT(a), MIN(a), MAX(a), SUM(a) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInteger(), 4);
  EXPECT_EQ(r.rows[0][1].AsInteger(), 3);  // NULL not counted
  EXPECT_EQ(r.rows[0][2].AsInteger(), 1);
  EXPECT_EQ(r.rows[0][3].AsInteger(), 7);
  EXPECT_EQ(r.rows[0][4].AsInteger(), 11);
}

TEST_F(SqldbTest, AggregateOverEmptyTable) {
  MustScript("CREATE TABLE t (a INTEGER);");
  QueryResult r = MustExecute("SELECT COUNT(*), MIN(a) FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInteger(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(SqldbTest, GroupByWithCount) {
  MustScript(
      "CREATE TABLE purpose (purpose VARCHAR(30));"
      "INSERT INTO purpose VALUES ('current'), ('contact'), ('contact'), "
      "('telemarketing');");
  QueryResult r = MustExecute(
      "SELECT purpose, COUNT(*) FROM purpose GROUP BY purpose "
      "ORDER BY 2 DESC, 1");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsText(), "contact");
  EXPECT_EQ(r.rows[0][1].AsInteger(), 2);
}

TEST_F(SqldbTest, GroupByRejectsBareColumns) {
  MustScript("CREATE TABLE t (a INTEGER, b INTEGER); ");
  EXPECT_FALSE(db_.Execute("SELECT a, b, COUNT(*) FROM t GROUP BY a").ok());
}

TEST_F(SqldbTest, Distinct) {
  MustScript(
      "CREATE TABLE t (a INTEGER);"
      "INSERT INTO t VALUES (1), (1), (2), (2), (2);");
  QueryResult r = MustExecute("SELECT DISTINCT a FROM t ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(SqldbTest, OrderByDescAndLimit) {
  MustScript(
      "CREATE TABLE t (a INTEGER);"
      "INSERT INTO t VALUES (1), (5), (3), (4), (2);");
  QueryResult r = MustExecute("SELECT a FROM t ORDER BY a DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInteger(), 5);
  EXPECT_EQ(r.rows[1][0].AsInteger(), 4);
}

TEST_F(SqldbTest, DeleteWithWhere) {
  MustScript(
      "CREATE TABLE t (a INTEGER);"
      "INSERT INTO t VALUES (1), (2), (3);");
  QueryResult r = MustExecute("DELETE FROM t WHERE a >= 2");
  EXPECT_EQ(r.rows_affected, 2);
  EXPECT_EQ(MustExecute("SELECT * FROM t").rows.size(), 1u);
  // Re-running the same parsed statement path must still work (WHERE is
  // restored after binding).
  EXPECT_EQ(MustExecute("DELETE FROM t WHERE a >= 2").rows_affected, 0);
}

TEST_F(SqldbTest, DeleteAll) {
  MustScript("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2);");
  EXPECT_EQ(MustExecute("DELETE FROM t").rows_affected, 2);
  EXPECT_EQ(MustExecute("SELECT COUNT(*) FROM t").rows[0][0].AsInteger(), 0);
}

TEST_F(SqldbTest, PrimaryKeyRejectsDuplicates) {
  MustScript(
      "CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b));"
      "INSERT INTO t VALUES (1, 1);");
  auto dup = db_.Execute("INSERT INTO t VALUES (1, 1)");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  // Different second component is fine.
  EXPECT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 2)").ok());
}

TEST_F(SqldbTest, ForeignKeyEnforced) {
  MustScript(
      "CREATE TABLE parent (id INTEGER, PRIMARY KEY (id));"
      "CREATE TABLE child (pid INTEGER, "
      "FOREIGN KEY (pid) REFERENCES parent (id));"
      "INSERT INTO parent VALUES (1);");
  EXPECT_TRUE(db_.Execute("INSERT INTO child VALUES (1)").ok());
  auto bad = db_.Execute("INSERT INTO child VALUES (99)");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // NULL FK components skip the check.
  EXPECT_TRUE(db_.Execute("INSERT INTO child VALUES (NULL)").ok());
}

TEST_F(SqldbTest, TypeMismatchRejected) {
  MustScript("CREATE TABLE t (a INTEGER);");
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES ('text')").ok());
}

TEST_F(SqldbTest, NotNullEnforced) {
  MustScript("CREATE TABLE t (a INTEGER NOT NULL);");
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (NULL)").ok());
}

TEST_F(SqldbTest, UnknownTableAndColumnErrors) {
  auto r1 = db_.Execute("SELECT * FROM missing");
  EXPECT_EQ(r1.status().code(), StatusCode::kNotFound);
  MustScript("CREATE TABLE t (a INTEGER);");
  auto r2 = db_.Execute("SELECT nope FROM t");
  EXPECT_EQ(r2.status().code(), StatusCode::kNotFound);
}

TEST_F(SqldbTest, AmbiguousColumnRejected) {
  MustScript("CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER);");
  auto r = db_.Execute("SELECT x FROM a, b");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SqldbTest, TableNamesAreCaseInsensitive) {
  MustScript("CREATE TABLE Policy (policy_id INTEGER);");
  EXPECT_TRUE(db_.Execute("SELECT * FROM POLICY").ok());
  EXPECT_TRUE(db_.Execute("SELECT * FROM policy").ok());
  EXPECT_FALSE(db_.Execute("CREATE TABLE POLICY (x INTEGER)").ok());
}

TEST_F(SqldbTest, DropTable) {
  MustScript("CREATE TABLE t (a INTEGER);");
  MustExecute("DROP TABLE t");
  EXPECT_FALSE(db_.Execute("SELECT * FROM t").ok());
  EXPECT_TRUE(db_.Execute("DROP TABLE IF EXISTS t").ok());
  EXPECT_FALSE(db_.Execute("DROP TABLE t").ok());
}

TEST_F(SqldbTest, CreateTableIfNotExistsIsIdempotent) {
  MustScript("CREATE TABLE IF NOT EXISTS t (a INTEGER);");
  MustScript("CREATE TABLE IF NOT EXISTS t (a INTEGER);");
  EXPECT_EQ(db_.TableCount(), 1u);
}

TEST_F(SqldbTest, SelectWithoutFrom) {
  QueryResult r = MustExecute("SELECT 1, 'two'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInteger(), 1);
  EXPECT_EQ(r.rows[0][1].AsText(), "two");
}

TEST_F(SqldbTest, IndexAcceleratesEqualityLookups) {
  MustScript("CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a));");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                            ", " + std::to_string(i * 10) + ")")
                    .ok());
  }
  db_.ResetStats();
  QueryResult r = MustExecute("SELECT b FROM t WHERE a = 42");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInteger(), 420);
  // The PK index must serve this: one point lookup, no full scan.
  EXPECT_EQ(db_.stats().full_scans, 0u);
  EXPECT_GE(db_.stats().index_lookups, 1u);
  EXPECT_LE(db_.stats().rows_scanned, 1u);
}

TEST_F(SqldbTest, SecondaryIndexUsedForCorrelatedSubquery) {
  // The planner decorrelates this EXISTS into a hash semi-join; turn it off
  // to pin the correlated access path itself (one index probe per outer
  // row), which remains the fallback for non-rewritable subqueries.
  Database db(Database::Options{.enable_planner = false,
                                .enable_plan_cache = false});
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE p (id INTEGER, PRIMARY KEY (id));"
                    "CREATE TABLE s (pid INTEGER, v INTEGER);"
                    "CREATE INDEX s_pid ON s (pid);")
                  .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db.Execute("INSERT INTO p VALUES (" + std::to_string(i) + ")").ok());
    ASSERT_TRUE(
        db.Execute("INSERT INTO s VALUES (" + std::to_string(i) + ", 1)")
            .ok());
  }
  db.ResetStats();
  auto r = db.Execute(
      "SELECT id FROM p WHERE EXISTS (SELECT * FROM s WHERE s.pid = p.id)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.value().rows.size(), 50u);
  // The inner probe uses the secondary index; only the outer scan is full.
  EXPECT_EQ(db.stats().full_scans, 1u);
  EXPECT_EQ(db.stats().index_lookups, 50u);
}

TEST_F(SqldbTest, PlannerRewritesCorrelatedExistsToSemiJoin) {
  MustScript(
      "CREATE TABLE p (id INTEGER, PRIMARY KEY (id));"
      "CREATE TABLE s (pid INTEGER, v INTEGER);"
      "CREATE INDEX s_pid ON s (pid);");
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db_.Execute("INSERT INTO p VALUES (" + std::to_string(i) + ")").ok());
    // Key every other outer row so the probe answers both ways.
    if (i % 2 == 0) {
      ASSERT_TRUE(db_.Execute("INSERT INTO s VALUES (" + std::to_string(i) +
                              ", 1)")
                      .ok());
    }
  }
  db_.ResetStats();
  const std::string sql =
      "SELECT id FROM p WHERE EXISTS (SELECT * FROM s WHERE s.pid = p.id)";
  QueryResult r = MustExecute(sql);
  EXPECT_EQ(r.rows.size(), 25u);
  ExecStats stats = db_.stats();
  EXPECT_EQ(stats.semi_join_rewrites, 1u);
  EXPECT_EQ(stats.hash_join_builds, 1u);
  EXPECT_EQ(stats.hash_join_probes, 50u);
  EXPECT_EQ(stats.plans_built, 1u);
  EXPECT_EQ(stats.plan_cache_hits, 0u);

  // Same text again: served from the plan cache, key set reused (no new
  // build), same answer.
  QueryResult again = MustExecute(sql);
  EXPECT_EQ(again.rows.size(), 25u);
  stats = db_.stats();
  EXPECT_EQ(stats.plans_built, 1u);
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.hash_join_builds, 1u);

  // A write to the build side invalidates the cached key set.
  ASSERT_TRUE(db_.Execute("INSERT INTO s VALUES (1, 1)").ok());
  QueryResult after = MustExecute(sql);
  EXPECT_EQ(after.rows.size(), 26u);
  stats = db_.stats();
  EXPECT_EQ(stats.hash_join_builds, 2u);
}

TEST_F(SqldbTest, SubqueryDepthLimitEnforced) {
  Database limited(Database::Options{.max_subquery_depth = 2,
                                     .enforce_foreign_keys = false});
  ASSERT_TRUE(limited.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  EXPECT_TRUE(
      limited.Execute("SELECT * FROM t WHERE EXISTS (SELECT * FROM t)").ok());
  auto deep = limited.Execute(
      "SELECT * FROM t WHERE EXISTS (SELECT * FROM t WHERE EXISTS ("
      "SELECT * FROM t))");
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(deep.status().code(), StatusCode::kLimitExceeded);
}

TEST_F(SqldbTest, ExistsEarlyOutScansAtMostOneMatch) {
  MustScript("CREATE TABLE big (a INTEGER);");
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_.Execute("INSERT INTO big VALUES (1)").ok());
  }
  db_.ResetStats();
  QueryResult r =
      MustExecute("SELECT 1 WHERE EXISTS (SELECT * FROM big)");
  EXPECT_EQ(r.rows.size(), 1u);
  // Early-out: must not scan all 100 rows.
  EXPECT_LE(db_.stats().rows_scanned, 1u);
}

TEST_F(SqldbTest, QueryResultToStringRendersTable) {
  MustScript("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (7);");
  std::string rendered = MustExecute("SELECT a FROM t").ToString();
  EXPECT_NE(rendered.find("| a |"), std::string::npos);
  EXPECT_NE(rendered.find("| 7 |"), std::string::npos);
  EXPECT_NE(rendered.find("(1 rows)"), std::string::npos);
}

TEST_F(SqldbTest, StatsAccumulateAndReset) {
  MustScript("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1);");
  MustExecute("SELECT * FROM t");
  EXPECT_GT(db_.stats().statements_executed, 0u);
  db_.ResetStats();
  EXPECT_EQ(db_.stats().statements_executed, 0u);
}

}  // namespace
}  // namespace p3pdb::sqldb
