// Tests for EXPLAIN and EXPLAIN ANALYZE: the plan must reflect the
// executor's actual access-path choices (index point lookups vs sequential
// scans) and the subquery nesting of the generated APPEL queries; ANALYZE
// additionally attaches per-node actual rows/loops/elapsed time and bound
// parameter values.

#include <gtest/gtest.h>

#include "appel/model.h"
#include "common/string_util.h"
#include "sqldb/database.h"
#include "workload/paper_examples.h"

#include "server/policy_server.h"

namespace p3pdb::sqldb {
namespace {

std::string PlanText(const Result<QueryResult>& result,
                     const std::string& sql) {
  EXPECT_TRUE(result.ok()) << result.status() << "\nSQL: " << sql;
  std::string plan;
  if (result.ok()) {
    for (const Row& row : result.value().rows) {
      plan += row[0].AsText();
      plan += "\n";
    }
  }
  return plan;
}

std::string Plan(Database* db, const std::string& sql) {
  return PlanText(db->Execute("EXPLAIN " + sql), sql);
}

std::string AnalyzePlan(Database* db, const std::string& sql,
                        const std::vector<Value>& params = {}) {
  return PlanText(db->Execute("EXPLAIN ANALYZE " + sql, params), sql);
}

size_t CountOf(const std::string& haystack, const std::string& needle) {
  size_t count = 0, pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

/// Strips the ANALYZE decorations so the remaining text is the structural
/// plan, comparable to plain EXPLAIN output.
std::string StripActuals(const std::string& plan) {
  std::string out;
  for (size_t i = 0; i < plan.size();) {
    size_t actual = plan.find(" (actual rows=", i);
    size_t never = plan.find(" (never executed)", i);
    size_t cut = std::min(actual, never);
    if (cut == std::string::npos) {
      out += plan.substr(i);
      break;
    }
    out += plan.substr(i, cut - i);
    i = plan.find(')', cut);
    if (i == std::string::npos) break;
    ++i;
  }
  return out;
}

TEST(ExplainTest, SeqScanWithoutIndex) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  std::string plan = Plan(&db, "SELECT * FROM t WHERE a = 1");
  EXPECT_NE(plan.find("scan t (seq scan)"), std::string::npos) << plan;
}

TEST(ExplainTest, IndexLookupWithPrimaryKey) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE t (a INTEGER, PRIMARY KEY (a));")
                  .ok());
  std::string plan = Plan(&db, "SELECT * FROM t WHERE a = 1");
  EXPECT_NE(plan.find("index pk_t on a"), std::string::npos) << plan;
}

TEST(ExplainTest, NonEqualityPredicateCannotUseIndex) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE t (a INTEGER, PRIMARY KEY (a));")
                  .ok());
  std::string plan = Plan(&db, "SELECT * FROM t WHERE a > 1");
  EXPECT_NE(plan.find("seq scan"), std::string::npos) << plan;
}

TEST(ExplainTest, CorrelatedSubqueryShowsIndexProbe) {
  // Planner off: pins the correlated fallback plan (re-executed subquery
  // probing the secondary index), which non-rewritable EXISTS still use.
  Database db(Database::Options{.enable_planner = false,
                                .enable_plan_cache = false});
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE p (id INTEGER, PRIMARY KEY (id));"
                    "CREATE TABLE s (pid INTEGER);"
                    "CREATE INDEX s_pid ON s (pid);")
                  .ok());
  std::string plan = Plan(
      &db,
      "SELECT * FROM p WHERE EXISTS (SELECT * FROM s WHERE s.pid = p.id)");
  EXPECT_NE(plan.find("scan p (seq scan)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("exists-subquery"), std::string::npos) << plan;
  EXPECT_NE(plan.find("index s_pid on pid"), std::string::npos) << plan;
}

TEST(ExplainTest, PlannerRewritesExistsToHashSemiJoin) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE p (id INTEGER, PRIMARY KEY (id));"
                    "CREATE TABLE s (pid INTEGER);"
                    "CREATE INDEX s_pid ON s (pid);")
                  .ok());
  std::string plan = Plan(
      &db,
      "SELECT * FROM p WHERE EXISTS (SELECT * FROM s WHERE s.pid = p.id)");
  EXPECT_NE(plan.find("hash-semi-join on s.pid = p.id"), std::string::npos)
      << plan;
  EXPECT_EQ(plan.find("exists-subquery"), std::string::npos) << plan;

  std::string anti = Plan(
      &db,
      "SELECT * FROM p WHERE NOT EXISTS "
      "(SELECT * FROM s WHERE s.pid = p.id)");
  EXPECT_NE(anti.find("hash-anti-join on s.pid = p.id"), std::string::npos)
      << anti;

  // A non-equality correlation is not decorrelated: correlated fallback.
  std::string fallback = Plan(
      &db,
      "SELECT * FROM p WHERE EXISTS (SELECT * FROM s WHERE s.pid < p.id)");
  EXPECT_NE(fallback.find("exists-subquery"), std::string::npos) << fallback;
  EXPECT_EQ(fallback.find("hash-semi-join"), std::string::npos) << fallback;
}

TEST(ExplainTest, DecorationsAppear) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  std::string plan = Plan(
      &db, "SELECT DISTINCT a, COUNT(*) FROM t GROUP BY a ORDER BY a LIMIT 3");
  EXPECT_NE(plan.find("distinct"), std::string::npos) << plan;
  EXPECT_NE(plan.find("hash aggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("sort"), std::string::npos) << plan;
  EXPECT_NE(plan.find("limit 3"), std::string::npos) << plan;
}

TEST(ExplainTest, GeneratedAppelQueryPlanIsFullyIndexed) {
  // The paper's core performance claim visualized: every parent-child join
  // in the translated Jane rule is served by an index; the only sequential
  // scan is the one-row ApplicablePolicy table. Planner off: hash-join
  // builds deliberately full-scan their table once, so this correlated
  // plan shape only exists on the fallback path.
  auto server = server::PolicyServer::Create(
      {.engine = server::EngineKind::kSql, .enable_planner = false});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(
      server.value()->InstallPolicy(workload::VolgaPolicy()).ok());
  auto pref =
      server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());
  std::string plan =
      Plan(server.value()->database(), pref.value().sql.rule_queries[0]);
  // One seq scan (ApplicablePolicy), everything else indexed.
  size_t seq_scans = 0, pos = 0;
  while ((pos = plan.find("(seq scan)", pos)) != std::string::npos) {
    ++seq_scans;
    pos += 1;
  }
  EXPECT_EQ(seq_scans, 1u) << plan;
  EXPECT_NE(plan.find("scan ApplicablePolicy (seq scan)"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("index pk_Policy"), std::string::npos) << plan;
  EXPECT_NE(plan.find("index idx_statement_policy"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("index idx_purpose_stmt"), std::string::npos) << plan;
}

// -- plan goldens: the planner must decorrelate the translated rule
// queries of both schema generations into hash joins. The outermost EXISTS
// stays correlated by design: its subquery carries the `?` policy-id
// parameter, and cached key sets must be parameter-independent.

TEST(ExplainTest, Fig15RuleQueryPlanUsesHashSemiJoins) {
  auto server =
      server::PolicyServer::Create({.engine = server::EngineKind::kSql});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->InstallPolicy(workload::VolgaPolicy()).ok());
  auto pref = server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());
  std::string plan =
      Plan(server.value()->database(), pref.value().sql.rule_queries[0]);
  EXPECT_NE(plan.find("hash-semi-join on Statement.policy_id = "
                      "Policy.policy_id"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("hash-semi-join on Purpose.policy_id = "
                      "Statement.policy_id, Purpose.statement_id = "
                      "Statement.statement_id"),
            std::string::npos)
      << plan;
  // Only the parameterized outer subquery keeps the correlated form.
  EXPECT_EQ(CountOf(plan, "exists-subquery"), 1u) << plan;
}

TEST(ExplainTest, Fig11RuleQueryPlanUsesHashSemiJoins) {
  auto server = server::PolicyServer::Create(
      {.engine = server::EngineKind::kSqlSimple});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->InstallPolicy(workload::VolgaPolicy()).ok());
  auto pref = server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());
  std::string plan =
      Plan(server.value()->database(), pref.value().sql.rule_queries[0]);
  // The simple schema's one-table-per-vocabulary-value shape: Statement,
  // Purpose, and every per-value table (Admin, Contact, ...) decorrelate.
  EXPECT_NE(plan.find("hash-semi-join on Statement.policy_id = "
                      "Policy.policy_id"),
            std::string::npos)
      << plan;
  EXPECT_GE(CountOf(plan, "hash-semi-join"), 4u) << plan;
  EXPECT_EQ(CountOf(plan, "exists-subquery"), 1u) << plan;
}

TEST(ExplainTest, OrExactRuleQueryPlanUsesHashAntiJoin) {
  // The or-exact connective adds the closure clause — "no purpose row
  // OTHER than the listed ones" — a correlated NOT EXISTS the planner
  // turns into a hash anti-join.
  appel::AppelRule rule = workload::JaneSimplifiedFirstRule();
  ASSERT_EQ(rule.expressions.size(), 1u);        // POLICY
  ASSERT_EQ(rule.expressions[0].children.size(), 1u);  // STATEMENT
  appel::AppelExpr& purpose = rule.expressions[0].children[0].children[0];
  ASSERT_EQ(purpose.name, "PURPOSE");
  purpose.connective = appel::Connective::kOrExact;
  appel::AppelRuleset ruleset;
  ruleset.rules.push_back(std::move(rule));

  auto server =
      server::PolicyServer::Create({.engine = server::EngineKind::kSql});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(server.value()->InstallPolicy(workload::VolgaPolicy()).ok());
  auto pref = server.value()->CompilePreference(ruleset);
  ASSERT_TRUE(pref.ok()) << pref.status();
  std::string plan =
      Plan(server.value()->database(), pref.value().sql.rule_queries[0]);
  EXPECT_NE(plan.find("hash-anti-join on Purpose.policy_id = "
                      "Statement.policy_id, Purpose.statement_id = "
                      "Statement.statement_id"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("hash-semi-join"), std::string::npos) << plan;
}

// -- cost-model plan-flip goldens: same SQL, same schema, different data
// shape => different plan. Each case pins both sides of the flip by running
// one database with the cost model and one without (rule-only).

TEST(ExplainTest, CostModelKeepsCorrelatedExistsWhenBuildDwarfsOuter) {
  // 3 outer rows vs a 400-row indexed build side: materializing the key set
  // enumerates 400 rows to answer 3 probes, while the correlated plan does
  // 3 point lookups on s_pid. The cost model vetoes the rewrite; the
  // rule-only planner takes it unconditionally.
  const char* schema =
      "CREATE TABLE p (id INTEGER, PRIMARY KEY (id));"
      "CREATE TABLE s (pid INTEGER);"
      "CREATE INDEX s_pid ON s (pid);";
  const std::string sql =
      "SELECT * FROM p WHERE EXISTS (SELECT * FROM s WHERE s.pid = p.id)";

  Database cost;  // cost model on by default
  ASSERT_TRUE(cost.ExecuteScript(schema).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cost.InsertRow("p", {Value::Integer(i)}).ok());
  }
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(cost.InsertRow("s", {Value::Integer(i % 40)}).ok());
  }
  std::string costed = Plan(&cost, sql);
  EXPECT_NE(costed.find("exists-subquery"), std::string::npos) << costed;
  EXPECT_EQ(costed.find("hash-semi-join"), std::string::npos) << costed;
  EXPECT_NE(costed.find("index s_pid on pid"), std::string::npos) << costed;

  Database rule(Database::Options{.enable_cost_model = false});
  ASSERT_TRUE(rule.ExecuteScript(schema).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rule.InsertRow("p", {Value::Integer(i)}).ok());
  }
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(rule.InsertRow("s", {Value::Integer(i % 40)}).ok());
  }
  std::string ruled = Plan(&rule, sql);
  EXPECT_NE(ruled.find("hash-semi-join on s.pid = p.id"), std::string::npos)
      << ruled;
  EXPECT_EQ(ruled.find("exists-subquery"), std::string::npos) << ruled;

  // Both plans return the identical rows.
  auto cost_rows = cost.Execute(sql);
  auto rule_rows = rule.Execute(sql);
  ASSERT_TRUE(cost_rows.ok());
  ASSERT_TRUE(rule_rows.ok());
  EXPECT_EQ(cost_rows.value().rows.size(), rule_rows.value().rows.size());
  EXPECT_GT(cost.stats().cost_exists_kept, 0u);
}

TEST(ExplainTest, RangeSelectivityInterpolationFlipsExistsRewrite) {
  // Golden plan-flip for min/max range interpolation. s has 400 rows with
  // val uniform over 1..100; p has 8. Under the old constant 1/3 range
  // guess, any `s.val > X` build side estimates 133 rows — past the 8x veto
  // threshold (64), so the correlated plan is always kept. Interpolating X
  // against the observed [1, 100] span estimates ~20 rows for X=95, which
  // is under the threshold, so the narrow predicate now flips the plan to
  // the hash-semi-join while the wide one (X=40, ~242 rows) still keeps
  // the correlated point-lookup plan.
  const char* schema =
      "CREATE TABLE p (id INTEGER, PRIMARY KEY (id));"
      "CREATE TABLE s (pid INTEGER, val INTEGER);"
      "CREATE INDEX s_pid ON s (pid);";
  Database db;  // cost model on by default
  ASSERT_TRUE(db.ExecuteScript(schema).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db.InsertRow("p", {Value::Integer(i)}).ok());
  }
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(db.InsertRow("s", {Value::Integer(i % 40),
                                   Value::Integer(i % 100 + 1)})
                    .ok());
  }
  const std::string narrow =
      "SELECT * FROM p WHERE EXISTS "
      "(SELECT * FROM s WHERE s.pid = p.id AND s.val > 95)";
  const std::string wide =
      "SELECT * FROM p WHERE EXISTS "
      "(SELECT * FROM s WHERE s.pid = p.id AND s.val > 40)";

  std::string narrow_plan = Plan(&db, narrow);
  EXPECT_NE(narrow_plan.find("hash-semi-join on s.pid = p.id"),
            std::string::npos)
      << narrow_plan;
  EXPECT_EQ(narrow_plan.find("exists-subquery"), std::string::npos)
      << narrow_plan;

  std::string wide_plan = Plan(&db, wide);
  EXPECT_NE(wide_plan.find("exists-subquery"), std::string::npos)
      << wide_plan;
  EXPECT_EQ(wide_plan.find("hash-semi-join"), std::string::npos) << wide_plan;

  // The flip is a cost choice, not a semantic one: both shapes return the
  // same rows as the rule-only planner's unconditional rewrite.
  Database rule(Database::Options{.enable_cost_model = false});
  ASSERT_TRUE(rule.ExecuteScript(schema).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rule.InsertRow("p", {Value::Integer(i)}).ok());
  }
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(rule.InsertRow("s", {Value::Integer(i % 40),
                                     Value::Integer(i % 100 + 1)})
                    .ok());
  }
  for (const std::string& sql : {narrow, wide}) {
    auto cost_rows = db.Execute(sql);
    auto rule_rows = rule.Execute(sql);
    ASSERT_TRUE(cost_rows.ok());
    ASSERT_TRUE(rule_rows.ok());
    EXPECT_EQ(cost_rows.value().rows.size(), rule_rows.value().rows.size())
        << sql;
  }
}

TEST(ExplainTest, CostModelForcesSeqScanOnLowCardinalityIndex) {
  // An index on a 2-value column: the syntactic planner always takes it,
  // but the lookup returns ~half the table — more work than scanning. With
  // statistics, NDV=2 => selectivity 1/2 >= the seq-force threshold.
  const char* schema =
      "CREATE TABLE t (flag INTEGER, v INTEGER);"
      "CREATE INDEX t_flag ON t (flag);";
  const std::string sql = "SELECT * FROM t WHERE flag = 1";

  Database cost;
  ASSERT_TRUE(cost.ExecuteScript(schema).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        cost.InsertRow("t", {Value::Integer(i % 2), Value::Integer(i)}).ok());
  }
  std::string costed = Plan(&cost, sql);
  EXPECT_NE(costed.find("scan t (seq scan) (est rows=100, seq-forced)"),
            std::string::npos)
      << costed;
  EXPECT_EQ(costed.find("index t_flag"), std::string::npos) << costed;
  EXPECT_GT(cost.stats().cost_seq_forced, 0u);

  Database rule(Database::Options{.enable_cost_model = false});
  ASSERT_TRUE(rule.ExecuteScript(schema).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        rule.InsertRow("t", {Value::Integer(i % 2), Value::Integer(i)}).ok());
  }
  std::string ruled = Plan(&rule, sql);
  EXPECT_NE(ruled.find("index t_flag on flag"), std::string::npos) << ruled;
  EXPECT_EQ(ruled.find("seq-forced"), std::string::npos) << ruled;

  // Row-identical either way.
  auto cost_rows = cost.Execute(sql);
  auto rule_rows = rule.Execute(sql);
  ASSERT_TRUE(cost_rows.ok());
  ASSERT_TRUE(rule_rows.ok());
  EXPECT_EQ(cost_rows.value().rows.size(), 50u);
  EXPECT_EQ(rule_rows.value().rows.size(), 50u);

  // A near-unique key on the same schema keeps its index: the flip is
  // driven by the data, not the shape of the SQL.
  std::string selective = Plan(&cost, "SELECT * FROM t WHERE v = 7");
  EXPECT_EQ(selective.find("seq-forced"), std::string::npos) << selective;
}

TEST(ExplainAnalyzeTest, EstimatedVersusActualRows) {
  // The est-vs-actual golden: a unique key estimates 1 row and finds 1; a
  // seq scan estimates the full table and visits it.
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a));")
                  .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db.InsertRow("t", {Value::Integer(i), Value::Integer(i / 10)}).ok());
  }
  std::string point = AnalyzePlan(&db, "SELECT * FROM t WHERE a = 7");
  EXPECT_NE(point.find("(est rows=1) (actual rows=1 loops=1"),
            std::string::npos)
      << point;
  std::string scan = AnalyzePlan(&db, "SELECT * FROM t WHERE b = 2");
  EXPECT_NE(scan.find("(est rows=50) (actual rows=50 loops=1"),
            std::string::npos)
      << scan;
}

TEST(ExplainTest, ExplainValidates) {
  Database db;
  EXPECT_FALSE(db.Execute("EXPLAIN SELECT * FROM missing").ok());
  EXPECT_FALSE(db.Execute("EXPLAIN INSERT INTO t VALUES (1)").ok());
}

TEST(ExplainAnalyzeTest, ReportsActualRowsAndLoops) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);"
                               "INSERT INTO t VALUES (1);"
                               "INSERT INTO t VALUES (2);"
                               "INSERT INTO t VALUES (3);")
                  .ok());
  std::string plan = AnalyzePlan(&db, "SELECT * FROM t WHERE a >= 2");
  EXPECT_NE(plan.find("select (actual rows=2 loops=1"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("scan t (seq scan) (est rows=3) (actual rows=3 loops=1"),
            std::string::npos)
      << plan;
  // Elapsed time is attached (value not pinned — timings are not
  // deterministic).
  EXPECT_NE(plan.find("time="), std::string::npos) << plan;
}

TEST(ExplainAnalyzeTest, CorrelatedSubqueryShowsLoops) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE p (id INTEGER, PRIMARY KEY (id));"
                    "CREATE TABLE s (pid INTEGER);"
                    "INSERT INTO p VALUES (1); INSERT INTO p VALUES (2);"
                    "INSERT INTO s VALUES (1);")
                  .ok());
  std::string plan = AnalyzePlan(
      &db,
      "SELECT * FROM p WHERE EXISTS (SELECT * FROM s WHERE s.pid = p.id)");
  // The subquery re-executes once per outer row: loops=2.
  EXPECT_NE(plan.find("loops=2"), std::string::npos) << plan;
}

TEST(ExplainAnalyzeTest, VectorizedScanReportsBatchActuals) {
  Database::Options options;
  options.enable_vectorized_executor = true;
  Database db(options);
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  // 64 rows: the adaptive ramp emits a 32-row first chunk and a 32-row
  // second chunk, both past the small-scan cutoff.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(db.InsertRow("t", {Value::Integer(i)}).ok());
  }
  const std::string sql = "SELECT * FROM t WHERE a >= 32";
  std::string plan = AnalyzePlan(&db, sql);
  // Golden batch actuals: 2 chunks, 32 rows each, half the rows pass.
  EXPECT_NE(plan.find("batches=2 rows/batch=32.0 selectivity=50.0%"),
            std::string::npos)
      << plan;
  EXPECT_NE(
      plan.find("scan t (seq scan) (est rows=64) (actual rows=64 loops=1"),
      std::string::npos)
      << plan;
  // Stripping the actuals recovers the structural EXPLAIN plan.
  EXPECT_EQ(StripActuals(plan), Plan(&db, sql));

  // The scalar executor renders the same structural plan with no batch
  // decorations.
  Database::Options scalar_options;
  scalar_options.enable_vectorized_executor = false;
  Database scalar(scalar_options);
  ASSERT_TRUE(scalar.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(scalar.InsertRow("t", {Value::Integer(i)}).ok());
  }
  std::string scalar_plan = AnalyzePlan(&scalar, sql);
  EXPECT_EQ(scalar_plan.find("batches="), std::string::npos) << scalar_plan;
  EXPECT_EQ(StripActuals(scalar_plan), StripActuals(plan));
}

TEST(ExplainAnalyzeTest, AnnotatesBoundParameterValues) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE t (a INTEGER, PRIMARY KEY (a));"
                    "INSERT INTO t VALUES (7);")
                  .ok());
  std::string plan =
      AnalyzePlan(&db, "SELECT * FROM t WHERE a = ?", {Value::Integer(7)});
  EXPECT_NE(plan.find("index pk_t on a = ?[=7]"), std::string::npos) << plan;
  EXPECT_NE(plan.find("actual rows=1"), std::string::npos) << plan;
  // Plain EXPLAIN of the same statement keeps the placeholder abstract.
  std::string unbound = Plan(&db, "SELECT * FROM t WHERE a = ?");
  EXPECT_NE(unbound.find("index pk_t on a = ?"), std::string::npos) << unbound;
  EXPECT_EQ(unbound.find("?[="), std::string::npos) << unbound;
}

TEST(ExplainAnalyzeTest, MarksNeverExecutedNodes) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE p (id INTEGER);"
                    "CREATE TABLE s (pid INTEGER);")
                  .ok());
  // Outer table empty: the EXISTS subquery is never reached.
  std::string plan = AnalyzePlan(
      &db,
      "SELECT * FROM p WHERE EXISTS (SELECT * FROM s WHERE s.pid = p.id)");
  EXPECT_NE(plan.find("(never executed)"), std::string::npos) << plan;
}

TEST(ExplainAnalyzeTest, RequiresExactParameters) {
  Database db;
  ASSERT_TRUE(
      db.ExecuteScript("CREATE TABLE t (a INTEGER, PRIMARY KEY (a));").ok());
  // ANALYZE executes, so parameter values are mandatory; plain EXPLAIN
  // renders the plan without them.
  EXPECT_FALSE(db.Execute("EXPLAIN ANALYZE SELECT * FROM t WHERE a = ?").ok());
  EXPECT_FALSE(db.Execute("EXPLAIN ANALYZE SELECT * FROM t WHERE a = ?",
                          {Value::Integer(1), Value::Integer(2)})
                   .ok());
  EXPECT_TRUE(db.Execute("EXPLAIN SELECT * FROM t WHERE a = ?").ok());
}

TEST(ExplainAnalyzeTest, GeneratedAppelQueryStructureMatchesExplain) {
  // The acceptance case: EXPLAIN ANALYZE on a Figure 15 rule query. Pin the
  // node structure — every node annotated, the structural plan identical to
  // plain EXPLAIN — without pinning timings.
  auto server =
      server::PolicyServer::Create({.engine = server::EngineKind::kSql});
  ASSERT_TRUE(server.ok());
  auto policy_id = server.value()->InstallPolicy(workload::VolgaPolicy());
  ASSERT_TRUE(policy_id.ok());
  auto pref = server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());
  const auto& sql = pref.value().sql;

  // Find a parameterized rule query (policy id arrives as a bind value).
  size_t rule = sql.rule_queries.size();
  for (size_t i = 0; i < sql.rule_queries.size(); ++i) {
    if (sql.param_counts[i] > 0) {
      rule = i;
      break;
    }
  }
  ASSERT_LT(rule, sql.rule_queries.size());
  std::vector<Value> params(sql.param_counts[rule],
                            Value::Integer(policy_id.value()));

  Database* db = server.value()->database();
  std::string analyzed = AnalyzePlan(db, sql.rule_queries[rule], params);

  // Every plan node line carries actuals (or an explicit never-executed
  // marker) — count annotations against node lines (subquery header lines
  // have no annotation of their own).
  size_t node_lines = 0;
  for (const std::string& line : Split(analyzed, '\n')) {
    if (line.empty()) continue;
    std::string trimmed = Trim(line);
    if (trimmed.rfind("select", 0) == 0 || trimmed.rfind("scan", 0) == 0 ||
        trimmed.rfind("hash-", 0) == 0) {
      ++node_lines;
    }
  }
  EXPECT_GT(node_lines, 2u) << analyzed;
  EXPECT_EQ(CountOf(analyzed, " (actual rows=") +
                CountOf(analyzed, " (never executed)"),
            node_lines)
      << analyzed;

  // The bound policy id is substituted into every index probe on it.
  EXPECT_NE(analyzed.find("?[=" + std::to_string(policy_id.value()) + "]"),
            std::string::npos)
      << analyzed;

  // Stripping the actuals recovers exactly the plain (bound) EXPLAIN plan:
  // ANALYZE changes annotations, never the plan shape.
  std::string plain = PlanText(
      db->Execute("EXPLAIN " + sql.rule_queries[rule], params),
      sql.rule_queries[rule]);
  EXPECT_EQ(StripActuals(analyzed), plain);
}

}  // namespace
}  // namespace p3pdb::sqldb
