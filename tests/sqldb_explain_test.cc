// Tests for EXPLAIN: the plan must reflect the executor's actual
// access-path choices (index point lookups vs sequential scans) and the
// subquery nesting of the generated APPEL queries.

#include <gtest/gtest.h>

#include "sqldb/database.h"
#include "workload/paper_examples.h"

#include "server/policy_server.h"

namespace p3pdb::sqldb {
namespace {

std::string Plan(Database* db, const std::string& sql) {
  auto result = db->Execute("EXPLAIN " + sql);
  EXPECT_TRUE(result.ok()) << result.status() << "\nSQL: " << sql;
  std::string plan;
  if (result.ok()) {
    for (const Row& row : result.value().rows) {
      plan += row[0].AsText();
      plan += "\n";
    }
  }
  return plan;
}

TEST(ExplainTest, SeqScanWithoutIndex) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  std::string plan = Plan(&db, "SELECT * FROM t WHERE a = 1");
  EXPECT_NE(plan.find("scan t (seq scan)"), std::string::npos) << plan;
}

TEST(ExplainTest, IndexLookupWithPrimaryKey) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE t (a INTEGER, PRIMARY KEY (a));")
                  .ok());
  std::string plan = Plan(&db, "SELECT * FROM t WHERE a = 1");
  EXPECT_NE(plan.find("index pk_t on a"), std::string::npos) << plan;
}

TEST(ExplainTest, NonEqualityPredicateCannotUseIndex) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE t (a INTEGER, PRIMARY KEY (a));")
                  .ok());
  std::string plan = Plan(&db, "SELECT * FROM t WHERE a > 1");
  EXPECT_NE(plan.find("seq scan"), std::string::npos) << plan;
}

TEST(ExplainTest, CorrelatedSubqueryShowsIndexProbe) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE p (id INTEGER, PRIMARY KEY (id));"
                    "CREATE TABLE s (pid INTEGER);"
                    "CREATE INDEX s_pid ON s (pid);")
                  .ok());
  std::string plan = Plan(
      &db,
      "SELECT * FROM p WHERE EXISTS (SELECT * FROM s WHERE s.pid = p.id)");
  EXPECT_NE(plan.find("scan p (seq scan)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("exists-subquery"), std::string::npos) << plan;
  EXPECT_NE(plan.find("index s_pid on pid"), std::string::npos) << plan;
}

TEST(ExplainTest, DecorationsAppear) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  std::string plan = Plan(
      &db, "SELECT DISTINCT a, COUNT(*) FROM t GROUP BY a ORDER BY a LIMIT 3");
  EXPECT_NE(plan.find("distinct"), std::string::npos) << plan;
  EXPECT_NE(plan.find("hash aggregate"), std::string::npos) << plan;
  EXPECT_NE(plan.find("sort"), std::string::npos) << plan;
  EXPECT_NE(plan.find("limit 3"), std::string::npos) << plan;
}

TEST(ExplainTest, GeneratedAppelQueryPlanIsFullyIndexed) {
  // The paper's core performance claim visualized: every parent-child join
  // in the translated Jane rule is served by an index; the only sequential
  // scan is the one-row ApplicablePolicy table.
  auto server =
      server::PolicyServer::Create({.engine = server::EngineKind::kSql});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE(
      server.value()->InstallPolicy(workload::VolgaPolicy()).ok());
  auto pref =
      server.value()->CompilePreference(workload::JanePreference());
  ASSERT_TRUE(pref.ok());
  std::string plan =
      Plan(server.value()->database(), pref.value().sql.rule_queries[0]);
  // One seq scan (ApplicablePolicy), everything else indexed.
  size_t seq_scans = 0, pos = 0;
  while ((pos = plan.find("(seq scan)", pos)) != std::string::npos) {
    ++seq_scans;
    pos += 1;
  }
  EXPECT_EQ(seq_scans, 1u) << plan;
  EXPECT_NE(plan.find("scan ApplicablePolicy (seq scan)"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("index pk_Policy"), std::string::npos) << plan;
  EXPECT_NE(plan.find("index idx_statement_policy"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("index idx_purpose_stmt"), std::string::npos) << plan;
}

TEST(ExplainTest, ExplainValidates) {
  Database db;
  EXPECT_FALSE(db.Execute("EXPLAIN SELECT * FROM missing").ok());
  EXPECT_FALSE(db.Execute("EXPLAIN INSERT INTO t VALUES (1)").ok());
}

}  // namespace
}  // namespace p3pdb::sqldb
