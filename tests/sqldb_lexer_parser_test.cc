// Tests for the SQL lexer and parser.

#include <gtest/gtest.h>

#include "sqldb/ast.h"
#include "sqldb/lexer.h"
#include "sqldb/parser.h"

namespace p3pdb::sqldb {
namespace {

std::vector<Token> MustTokenize(std::string_view sql) {
  auto result = Tokenize(sql);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(LexerTest, BasicTokens) {
  std::vector<Token> tokens = MustTokenize("SELECT * FROM t WHERE a = 1");
  ASSERT_EQ(tokens.size(), 9u);  // incl. kEnd
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].type, TokenType::kStar);
  EXPECT_TRUE(tokens[2].IsKeyword("FROM"));
  EXPECT_EQ(tokens[3].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[5].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[6].type, TokenType::kOperator);
  EXPECT_EQ(tokens[7].type, TokenType::kInteger);
  EXPECT_EQ(tokens[7].int_value, 1);
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  std::vector<Token> tokens = MustTokenize("'it''s'");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, Operators) {
  std::vector<Token> tokens = MustTokenize("= <> != < <= > >=");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[0].text, "=");
  EXPECT_EQ(tokens[1].text, "<>");
  EXPECT_EQ(tokens[2].text, "<>");  // != normalizes
  EXPECT_EQ(tokens[3].text, "<");
  EXPECT_EQ(tokens[4].text, "<=");
  EXPECT_EQ(tokens[5].text, ">");
  EXPECT_EQ(tokens[6].text, ">=");
}

TEST(LexerTest, CommentsSkipped) {
  std::vector<Token> tokens = MustTokenize("SELECT -- comment\n 1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::kInteger);
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'abc").ok());
}

TEST(LexerTest, QualifiedName) {
  std::vector<Token> tokens = MustTokenize("Policy.policy_id");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].type, TokenType::kDot);
}

std::unique_ptr<Statement> MustParse(std::string_view sql) {
  auto result = ParseStatement(sql);
  EXPECT_TRUE(result.ok()) << result.status() << "\nSQL: " << sql;
  return result.ok() ? std::move(result).value() : nullptr;
}

const SelectStmt& AsSelect(const std::unique_ptr<Statement>& stmt) {
  EXPECT_EQ(stmt->kind, StatementKind::kSelect);
  return static_cast<const SelectStmt&>(*stmt);
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = MustParse("SELECT a, b FROM t WHERE a = 1");
  const SelectStmt& sel = AsSelect(stmt);
  EXPECT_EQ(sel.items.size(), 2u);
  EXPECT_EQ(sel.from.size(), 1u);
  EXPECT_EQ(sel.from[0].table_name, "t");
  ASSERT_NE(sel.where, nullptr);
}

TEST(ParserTest, SelectStarWithAlias) {
  auto stmt = MustParse("SELECT * FROM Policy p");
  const SelectStmt& sel = AsSelect(stmt);
  EXPECT_TRUE(sel.items[0].is_star);
  EXPECT_EQ(sel.from[0].alias, "p");
}

TEST(ParserTest, SelectLiteralBehavior) {
  // The shape main() generates in Figure 13: SELECT 'block' FROM ...
  auto stmt = MustParse("SELECT 'block' FROM ApplicablePolicy");
  const SelectStmt& sel = AsSelect(stmt);
  ASSERT_EQ(sel.items.size(), 1u);
  EXPECT_EQ(sel.items[0].expr->kind, ExprKind::kLiteral);
}

TEST(ParserTest, NestedExists) {
  auto stmt = MustParse(
      "SELECT 'block' FROM ApplicablePolicy WHERE EXISTS ("
      "SELECT * FROM Policy WHERE Policy.policy_id = "
      "ApplicablePolicy.policy_id AND EXISTS ("
      "SELECT * FROM Statement WHERE Statement.policy_id = "
      "Policy.policy_id))");
  const SelectStmt& sel = AsSelect(stmt);
  ASSERT_EQ(sel.where->kind, ExprKind::kExists);
  const auto& outer = static_cast<const ExistsExpr&>(*sel.where);
  ASSERT_NE(outer.subquery, nullptr);
  ASSERT_NE(outer.subquery->where, nullptr);
  EXPECT_EQ(outer.subquery->where->kind, ExprKind::kLogical);
}

TEST(ParserTest, OrPrecedenceLowerThanAnd) {
  auto stmt = MustParse("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3");
  const SelectStmt& sel = AsSelect(stmt);
  const auto& top = static_cast<const LogicalExpr&>(*sel.where);
  EXPECT_FALSE(top.is_and);
  ASSERT_EQ(top.operands.size(), 2u);
  EXPECT_EQ(top.operands[1]->kind, ExprKind::kLogical);
  EXPECT_TRUE(static_cast<const LogicalExpr&>(*top.operands[1]).is_and);
}

TEST(ParserTest, ParensOverridePrecedence) {
  auto stmt = MustParse("SELECT 1 FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  const auto& top = static_cast<const LogicalExpr&>(*AsSelect(stmt).where);
  EXPECT_TRUE(top.is_and);
  EXPECT_EQ(top.operands[0]->kind, ExprKind::kLogical);
}

TEST(ParserTest, NotExists) {
  auto stmt = MustParse("SELECT 1 FROM t WHERE NOT EXISTS (SELECT * FROM u)");
  const auto& exists = static_cast<const ExistsExpr&>(*AsSelect(stmt).where);
  EXPECT_TRUE(exists.negated);
}

TEST(ParserTest, InList) {
  auto stmt =
      MustParse("SELECT 1 FROM t WHERE p IN ('admin', 'contact', 'develop')");
  const auto& in = static_cast<const InListExpr&>(*AsSelect(stmt).where);
  EXPECT_EQ(in.items.size(), 3u);
  EXPECT_FALSE(in.negated);
}

TEST(ParserTest, NotIn) {
  auto stmt = MustParse("SELECT 1 FROM t WHERE p NOT IN ('x')");
  const auto& in = static_cast<const InListExpr&>(*AsSelect(stmt).where);
  EXPECT_TRUE(in.negated);
}

TEST(ParserTest, IsNullAndIsNotNull) {
  auto stmt = MustParse("SELECT 1 FROM t WHERE a IS NULL AND b IS NOT NULL");
  const auto& top = static_cast<const LogicalExpr&>(*AsSelect(stmt).where);
  const auto& lhs = static_cast<const IsNullExpr&>(*top.operands[0]);
  const auto& rhs = static_cast<const IsNullExpr&>(*top.operands[1]);
  EXPECT_FALSE(lhs.negated);
  EXPECT_TRUE(rhs.negated);
}

TEST(ParserTest, Like) {
  auto stmt = MustParse("SELECT 1 FROM t WHERE 'uri' LIKE pattern");
  EXPECT_EQ(AsSelect(stmt).where->kind, ExprKind::kLike);
}

TEST(ParserTest, DistinctGroupOrderLimit) {
  auto stmt = MustParse(
      "SELECT DISTINCT purpose, COUNT(*) FROM Purpose GROUP BY purpose "
      "ORDER BY 2 DESC LIMIT 5");
  const SelectStmt& sel = AsSelect(stmt);
  EXPECT_TRUE(sel.distinct);
  EXPECT_EQ(sel.group_by.size(), 1u);
  ASSERT_EQ(sel.order_by.size(), 1u);
  EXPECT_FALSE(sel.order_by[0].ascending);
  EXPECT_EQ(sel.limit, 5);
}

TEST(ParserTest, Aggregates) {
  auto stmt = MustParse("SELECT COUNT(*), COUNT(a), MIN(a), MAX(a), SUM(a) FROM t");
  const SelectStmt& sel = AsSelect(stmt);
  ASSERT_EQ(sel.items.size(), 5u);
  for (const auto& item : sel.items) {
    EXPECT_EQ(item.expr->kind, ExprKind::kAggregate);
  }
}

TEST(ParserTest, InsertPositional) {
  auto stmt = MustParse("INSERT INTO t VALUES (1, 'a'), (2, NULL)");
  const auto& ins = static_cast<const InsertStmt&>(*stmt);
  EXPECT_EQ(ins.table_name, "t");
  EXPECT_TRUE(ins.columns.empty());
  EXPECT_EQ(ins.rows.size(), 2u);
}

TEST(ParserTest, InsertWithColumns) {
  auto stmt = MustParse("INSERT INTO t (a, b) VALUES (1, 'x')");
  const auto& ins = static_cast<const InsertStmt&>(*stmt);
  ASSERT_EQ(ins.columns.size(), 2u);
  EXPECT_EQ(ins.columns[0], "a");
}

TEST(ParserTest, CreateTableFull) {
  auto stmt = MustParse(
      "CREATE TABLE Statement (policy_id INTEGER NOT NULL, "
      "statement_id INTEGER NOT NULL, consequence VARCHAR(255), "
      "PRIMARY KEY (policy_id, statement_id), "
      "FOREIGN KEY (policy_id) REFERENCES Policy (policy_id))");
  const auto& ct = static_cast<const CreateTableStmt&>(*stmt);
  EXPECT_EQ(ct.schema.name(), "Statement");
  EXPECT_EQ(ct.schema.ColumnCount(), 3u);
  EXPECT_FALSE(ct.schema.columns()[0].nullable);
  EXPECT_TRUE(ct.schema.columns()[2].nullable);
  EXPECT_EQ(ct.schema.primary_key().size(), 2u);
  ASSERT_EQ(ct.schema.foreign_keys().size(), 1u);
  EXPECT_EQ(ct.schema.foreign_keys()[0].referenced_table, "Policy");
}

TEST(ParserTest, CreateTableIfNotExists) {
  auto stmt = MustParse("CREATE TABLE IF NOT EXISTS t (a INTEGER)");
  EXPECT_TRUE(static_cast<const CreateTableStmt&>(*stmt).if_not_exists);
}

TEST(ParserTest, CreateUniqueIndex) {
  auto stmt = MustParse("CREATE UNIQUE INDEX idx ON t (a, b)");
  const auto& ci = static_cast<const CreateIndexStmt&>(*stmt);
  EXPECT_TRUE(ci.unique);
  EXPECT_EQ(ci.columns.size(), 2u);
}

TEST(ParserTest, DropTableIfExists) {
  auto stmt = MustParse("DROP TABLE IF EXISTS t");
  EXPECT_TRUE(static_cast<const DropTableStmt&>(*stmt).if_exists);
}

TEST(ParserTest, DeleteWithWhere) {
  auto stmt = MustParse("DELETE FROM t WHERE a = 1");
  const auto& del = static_cast<const DeleteStmt&>(*stmt);
  EXPECT_EQ(del.table_name, "t");
  ASSERT_NE(del.where, nullptr);
}

TEST(ParserTest, ScriptSplitsOnSemicolons) {
  auto result = ParseScript(
      "CREATE TABLE a (x INTEGER); INSERT INTO a VALUES (1);;"
      "SELECT * FROM a;");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().size(), 3u);
}

TEST(ParserTest, TrailingGarbageFails) {
  EXPECT_FALSE(ParseStatement("SELECT 1 FROM t extra garbage here").ok());
}

TEST(ParserTest, MissingFromTableFails) {
  EXPECT_FALSE(ParseStatement("SELECT a FROM WHERE x = 1").ok());
}

TEST(ParserTest, EmptyFails) { EXPECT_FALSE(ParseStatement("").ok()); }

TEST(ParserTest, ErrorsMentionOffset) {
  auto result = ParseStatement("SELECT FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("offset"), std::string::npos);
}

TEST(ParserTest, ToSqlRoundTrips) {
  const char* sql =
      "SELECT 'block' FROM ApplicablePolicy WHERE EXISTS (SELECT * FROM "
      "Purpose WHERE Purpose.policy_id = ApplicablePolicy.policy_id AND "
      "(Purpose.purpose = 'admin' OR Purpose.purpose = 'contact' AND "
      "Purpose.required = 'always'))";
  auto stmt = MustParse(sql);
  std::string rendered = AsSelect(stmt).ToSql();
  // Render -> parse -> render must be a fixed point.
  auto stmt2 = MustParse(rendered);
  EXPECT_EQ(AsSelect(stmt2).ToSql(), rendered);
}

}  // namespace
}  // namespace p3pdb::sqldb
