// Bind-parameter (`?`) support: parse/bind/execute plumbing, unbound and
// miscounted rejection, index use, and prepared re-execution.

#include <gtest/gtest.h>

#include "sqldb/database.h"

namespace p3pdb::sqldb {
namespace {

class SqldbParamsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(R"sql(
      CREATE TABLE Album (
        album_id INTEGER NOT NULL,
        artist VARCHAR(64) NOT NULL,
        year INTEGER,
        PRIMARY KEY (album_id)
      );
    )sql")
                    .ok());
    for (int i = 1; i <= 40; ++i) {
      ASSERT_TRUE(db_.InsertRow("Album",
                                {Value::Integer(i),
                                 Value::Text("artist-" + std::to_string(i % 4)),
                                 Value::Integer(1960 + i)})
                      .ok());
    }
  }

  Database db_;
};

TEST_F(SqldbParamsTest, UnparameterizedExecuteRejectsPlaceholder) {
  auto result = db_.Execute("SELECT * FROM Album WHERE album_id = ?");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("parameter"), std::string::npos)
      << result.status();
}

TEST_F(SqldbParamsTest, ExecuteWithParamsReturnsLiteralRows) {
  auto literal = db_.Execute("SELECT artist FROM Album WHERE album_id = 7");
  ASSERT_TRUE(literal.ok());
  auto bound = db_.Execute("SELECT artist FROM Album WHERE album_id = ?",
                           {Value::Integer(7)});
  ASSERT_TRUE(bound.ok()) << bound.status();
  ASSERT_EQ(bound.value().rows.size(), literal.value().rows.size());
  EXPECT_EQ(bound.value().rows[0], literal.value().rows[0]);
}

TEST_F(SqldbParamsTest, ParamCountMismatchIsRejected) {
  auto prepared = db_.Prepare(
      "SELECT * FROM Album WHERE album_id = ? AND year = ?");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_EQ(prepared.value().param_count(), 2u);

  auto unbound = prepared.value().Execute();
  ASSERT_FALSE(unbound.ok());
  auto too_few = prepared.value().Execute({Value::Integer(3)});
  ASSERT_FALSE(too_few.ok());
  EXPECT_NE(too_few.status().ToString().find("2 parameter"),
            std::string::npos)
      << too_few.status();
  auto too_many = prepared.value().Execute(
      {Value::Integer(3), Value::Integer(1963), Value::Integer(9)});
  ASSERT_FALSE(too_many.ok());

  auto exact = prepared.value().Execute(
      {Value::Integer(3), Value::Integer(1963)});
  ASSERT_TRUE(exact.ok()) << exact.status();
  EXPECT_EQ(exact.value().rows.size(), 1u);
}

TEST_F(SqldbParamsTest, ExecuteWithParamsOnNonSelectIsRejected) {
  auto result = db_.Execute("DELETE FROM Album WHERE album_id = ?",
                            {Value::Integer(1)});
  ASSERT_FALSE(result.ok());
}

TEST_F(SqldbParamsTest, PlaceholderInDmlIsRejectedAsUnbound) {
  auto result = db_.Execute("DELETE FROM Album WHERE album_id = ?");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("parameter"), std::string::npos);
}

TEST_F(SqldbParamsTest, ParamEqualityUsesPrimaryKeyIndex) {
  db_.ResetStats();
  auto bound = db_.Execute("SELECT year FROM Album WHERE album_id = ?",
                           {Value::Integer(21)});
  ASSERT_TRUE(bound.ok()) << bound.status();
  ASSERT_EQ(bound.value().rows.size(), 1u);
  EXPECT_EQ(bound.value().rows[0][0].AsInteger(), 1981);
  EXPECT_GE(db_.stats().index_lookups, 1u);
  EXPECT_EQ(db_.stats().full_scans, 0u);
}

TEST_F(SqldbParamsTest, PreparedStatementReexecutesWithDifferentValues) {
  auto prepared = db_.Prepare("SELECT COUNT(*) FROM Album WHERE artist = ?");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto hits = prepared.value().Execute({Value::Text("artist-1")});
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits.value().rows[0][0].AsInteger(), 10);
  auto misses = prepared.value().Execute({Value::Text("nobody")});
  ASSERT_TRUE(misses.ok());
  EXPECT_EQ(misses.value().rows[0][0].AsInteger(), 0);
}

TEST_F(SqldbParamsTest, ParamInSubqueryCountsOnRootStatement) {
  auto prepared = db_.Prepare(
      "SELECT album_id FROM Album WHERE year = ? AND EXISTS "
      "(SELECT * FROM Album WHERE album_id = ?)");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_EQ(prepared.value().param_count(), 2u);
  auto rows = prepared.value().Execute(
      {Value::Integer(1970), Value::Integer(1)});
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows.value().rows.size(), 1u);
  EXPECT_EQ(rows.value().rows[0][0].AsInteger(), 10);
}

}  // namespace
}  // namespace p3pdb::sqldb
