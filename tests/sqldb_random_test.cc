// Randomized differential test for the SQL executor: random predicates over
// random data, evaluated twice — once by the engine, once by a direct
// brute-force C++ interpreter with explicit three-valued logic. The two
// must agree on every row count.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <set>

#include "common/random.h"
#include "sqldb/database.h"
#include "sqldb/executor.h"

namespace p3pdb::sqldb {
namespace {

using TriBool = std::optional<bool>;  // nullopt = SQL NULL / unknown

struct Predicate {
  std::string sql;
  std::function<TriBool(const Row&)> eval;
};

TriBool TriAnd(TriBool a, TriBool b) {
  if (a.has_value() && !*a) return false;
  if (b.has_value() && !*b) return false;
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  return true;
}

TriBool TriOr(TriBool a, TriBool b) {
  if (a.has_value() && *a) return true;
  if (b.has_value() && *b) return true;
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  return false;
}

TriBool TriNot(TriBool a) {
  if (!a.has_value()) return std::nullopt;
  return !*a;
}

/// Columns: 0 = a INTEGER, 1 = b INTEGER, 2 = c VARCHAR.
class PredicateGen {
 public:
  explicit PredicateGen(Random* rng) : rng_(rng) {}

  Predicate Generate(int depth) {
    if (depth <= 0 || rng_->Bernoulli(0.4)) return Leaf();
    switch (rng_->Uniform(3)) {
      case 0: {
        Predicate l = Generate(depth - 1), r = Generate(depth - 1);
        return Predicate{
            "(" + l.sql + " AND " + r.sql + ")",
            [l, r](const Row& row) { return TriAnd(l.eval(row), r.eval(row)); }};
      }
      case 1: {
        Predicate l = Generate(depth - 1), r = Generate(depth - 1);
        return Predicate{
            "(" + l.sql + " OR " + r.sql + ")",
            [l, r](const Row& row) { return TriOr(l.eval(row), r.eval(row)); }};
      }
      default: {
        Predicate inner = Generate(depth - 1);
        return Predicate{"NOT (" + inner.sql + ")", [inner](const Row& row) {
                           return TriNot(inner.eval(row));
                         }};
      }
    }
  }

 private:
  Predicate Leaf() {
    switch (rng_->Uniform(5)) {
      case 0: {  // integer comparison against a literal
        size_t col = rng_->Uniform(2);
        int64_t lit = rng_->UniformInt(0, 5);
        const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
        int op = rng_->UniformInt(0, 5);
        std::string col_name = col == 0 ? "a" : "b";
        Predicate p;
        p.sql = col_name + " " + ops[op] + " " + std::to_string(lit);
        p.eval = [col, lit, op](const Row& row) -> TriBool {
          if (row[col].is_null()) return std::nullopt;
          int64_t v = row[col].AsInteger();
          switch (op) {
            case 0: return v == lit;
            case 1: return v != lit;
            case 2: return v < lit;
            case 3: return v <= lit;
            case 4: return v > lit;
            default: return v >= lit;
          }
        };
        return p;
      }
      case 1: {  // column-to-column comparison
        Predicate p;
        p.sql = "a = b";
        p.eval = [](const Row& row) -> TriBool {
          if (row[0].is_null() || row[1].is_null()) return std::nullopt;
          return row[0].AsInteger() == row[1].AsInteger();
        };
        return p;
      }
      case 2: {  // IS [NOT] NULL
        size_t col = rng_->Uniform(3);
        bool negated = rng_->Bernoulli(0.5);
        static const char* names[] = {"a", "b", "c"};
        Predicate p;
        p.sql = std::string(names[col]) + (negated ? " IS NOT NULL"
                                                   : " IS NULL");
        p.eval = [col, negated](const Row& row) -> TriBool {
          bool is_null = row[col].is_null();
          return negated ? !is_null : is_null;
        };
        return p;
      }
      case 3: {  // IN list over text
        int n = rng_->UniformInt(1, 3);
        std::vector<std::string> items;
        static const char* pool[] = {"x", "y", "z", "w"};
        for (int i = 0; i < n; ++i) items.push_back(pool[rng_->Uniform(4)]);
        bool negated = rng_->Bernoulli(0.3);
        Predicate p;
        p.sql = std::string("c") + (negated ? " NOT IN (" : " IN (");
        for (int i = 0; i < n; ++i) {
          if (i > 0) p.sql += ", ";
          p.sql += "'" + items[i] + "'";
        }
        p.sql += ")";
        p.eval = [items, negated](const Row& row) -> TriBool {
          if (row[2].is_null()) return std::nullopt;
          bool found = false;
          for (const std::string& item : items) {
            if (row[2].AsText() == item) found = true;
          }
          TriBool base = found;
          return negated ? TriNot(base) : base;
        };
        return p;
      }
      default: {  // LIKE on text
        static const char* patterns[] = {"%x%", "x%", "%z", "_", "%", "x_z"};
        std::string pattern = patterns[rng_->Uniform(6)];
        Predicate p;
        p.sql = "c LIKE '" + pattern + "'";
        p.eval = [pattern](const Row& row) -> TriBool {
          if (row[2].is_null()) return std::nullopt;
          return SqlLikeMatch(row[2].AsText(), pattern);
        };
        return p;
      }
    }
  }

  Random* rng_;
};

/// Correlated-subquery generator for the plan-equivalence battery. Emits
/// EXISTS / NOT EXISTS predicates over `u(k, v, w)` correlated to the outer
/// `t(a, b, c)`; some shapes satisfy the planner's rewrite preconditions
/// (pure equality correlation, local-only residue) and become hash
/// semi/anti-joins, others (non-equality or disjunctive correlation) are
/// deliberately non-rewritable and must take the correlated fallback path.
/// Ground truth is a planner-off database, so no brute-force evaluator is
/// needed here.
class ExistsGen {
 public:
  explicit ExistsGen(Random* rng) : rng_(rng) {}

  std::string Generate() {
    const bool negated = rng_->Bernoulli(0.4);
    std::string inner;
    switch (rng_->Uniform(7)) {
      case 0:  // single-key equality correlation: rewritable
        inner = "u.k = a";
        break;
      case 1:  // composite-key correlation: rewritable
        inner = "u.k = a AND u.v = b";
        break;
      case 2:  // correlation + local predicate pushed below the build
        inner = "u.k = a AND u.v >= " + std::to_string(rng_->UniformInt(0, 4));
        break;
      case 3:  // correlation + NULL-sensitive local predicate
        inner = "u.k = b AND (u.w IS NULL OR u.w LIKE '%x%')";
        break;
      case 4:  // reversed operand order, still an equality correlation
        inner = "a = u.k AND u.w IS NOT NULL";
        break;
      case 5:  // non-equality correlation: NOT rewritable
        inner = "u.k < a";
        break;
      default:  // disjunctive correlation: NOT rewritable
        inner = "(u.k = a OR u.v = " + std::to_string(rng_->UniformInt(0, 3)) +
                ")";
        break;
    }
    if (rng_->Bernoulli(0.25)) {
      // Nest a second correlated level so the build side itself plans.
      inner += rng_->Bernoulli(0.5)
                   ? " AND EXISTS (SELECT * FROM s WHERE s.m = u.v)"
                   : " AND NOT EXISTS (SELECT * FROM s WHERE s.m = u.k AND "
                     "s.n = " +
                         std::to_string(rng_->UniformInt(0, 3)) + ")";
    }
    return std::string(negated ? "NOT EXISTS" : "EXISTS") +
           " (SELECT * FROM u WHERE " + inner + ")";
  }

 private:
  Random* rng_;
};

class SqldbRandomTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SqldbRandomTest,
                         ::testing::Values(3, 7, 11, 19, 23, 42));

TEST_P(SqldbRandomTest, ExecutorAgreesWithBruteForce) {
  Random rng(GetParam());
  Database db;
  ASSERT_TRUE(
      db.ExecuteScript("CREATE TABLE t (a INTEGER, b INTEGER, c VARCHAR(4));")
          .ok());

  // Random data with plenty of NULLs and duplicate values.
  std::vector<Row> rows;
  static const char* texts[] = {"x", "y", "z", "w", "xz", "xyz"};
  for (int i = 0; i < 60; ++i) {
    Row row;
    row.push_back(rng.Bernoulli(0.2) ? Value::Null()
                                     : Value::Integer(rng.UniformInt(0, 5)));
    row.push_back(rng.Bernoulli(0.2) ? Value::Null()
                                     : Value::Integer(rng.UniformInt(0, 5)));
    row.push_back(rng.Bernoulli(0.2)
                      ? Value::Null()
                      : Value::Text(texts[rng.Uniform(6)]));
    ASSERT_TRUE(db.InsertRow("t", row).ok());
    rows.push_back(std::move(row));
  }

  PredicateGen gen(&rng);
  for (int trial = 0; trial < 60; ++trial) {
    Predicate pred = gen.Generate(3);
    auto result =
        db.Execute("SELECT COUNT(*) FROM t WHERE " + pred.sql);
    ASSERT_TRUE(result.ok()) << result.status() << "\nWHERE " << pred.sql;
    int64_t engine_count = result.value().rows[0][0].AsInteger();

    int64_t brute_count = 0;
    for (const Row& row : rows) {
      TriBool verdict = pred.eval(row);
      if (verdict.has_value() && *verdict) ++brute_count;
    }
    ASSERT_EQ(engine_count, brute_count) << "WHERE " << pred.sql;
  }
}

/// EXPLAIN text for `sql` on one database, for the failure artifact.
std::string ExplainOrError(Database* db, const std::string& sql) {
  auto result = db->Execute("EXPLAIN " + sql);
  if (!result.ok()) return "  <explain failed: " + result.status().ToString() +
                           ">\n";
  std::string plan;
  for (const Row& row : result.value().rows) {
    plan += "  " + row[0].AsText() + "\n";
  }
  return plan;
}

/// On a three-way disagreement, writes the query plus each mode's EXPLAIN
/// plan and result to plan_equivalence_failure.txt so CI can upload the
/// repro as an artifact (mirrors differential_failure.txt).
void WritePlanEquivalenceFailure(uint64_t seed, const std::string& sql,
                                 Database* none, Database* rule,
                                 Database* cost) {
  std::ofstream out("plan_equivalence_failure.txt", std::ios::trunc);
  out << "plan-equivalence disagreement (seed " << seed << ")\n"
      << sql << "\n\n";
  struct Mode {
    const char* name;
    Database* db;
  } modes[] = {{"no-planner", none}, {"rule-only", rule}, {"cost-based", cost}};
  for (const Mode& m : modes) {
    out << "[" << m.name << "] plan:\n" << ExplainOrError(m.db, sql);
    auto result = m.db->Execute(sql);
    out << "[" << m.name << "] rows:\n"
        << (result.ok() ? result.value().ToString()
                        : result.status().ToString())
        << "\n";
  }
  out << "replay: ./sqldb_random_test "
      << "--gtest_filter='*PlannerEquivalenceDifferential*'\n";
}

// Plan-equivalence differential, three ways: every generated query runs on
// a no-planner database (ground truth), a rule-only database (PR-4 rewrites,
// no statistics), and a cost-based database (statistics moderate the
// rewrites, access paths, and build order) over identical data — and all
// three must return identical rows in identical order. 90 trials x 6 seeds
// = 540 queries, clearing the >=500 bar in each mode pair. The data is
// deliberately skewed: u.k draws from a min-of-two-uniforms distribution
// and u outweighs t by an order of magnitude, so the cost model's
// EXISTS-rewrite veto and join-order choices actually fire (asserted at the
// end — a cost model that never diverged from the rules would make the
// third mode vacuous). On any disagreement the EXPLAIN plans of all three
// modes land in plan_equivalence_failure.txt for CI to upload.
TEST_P(SqldbRandomTest, PlannerEquivalenceDifferential) {
  const uint64_t seed = GetParam();
  Random rng(seed * 7919 + 1);
  Database none(Database::Options{.enable_planner = false,
                                  .enable_plan_cache = false,
                                  .enable_cost_model = false});
  Database rule(Database::Options{.enable_planner = true,
                                  .enable_plan_cache = true,
                                  .enable_cost_model = false});
  Database cost(Database::Options{.enable_planner = true,
                                  .enable_plan_cache = true,
                                  .enable_cost_model = true});
  Database* dbs[] = {&none, &rule, &cost};
  const char* schema =
      "CREATE TABLE t (a INTEGER, b INTEGER, c VARCHAR(4));"
      "CREATE TABLE u (k INTEGER, v INTEGER, w VARCHAR(4));"
      "CREATE TABLE s (m INTEGER, n INTEGER);"
      "CREATE INDEX u_k ON u (k);";
  for (Database* db : dbs) ASSERT_TRUE(db->ExecuteScript(schema).ok());

  static const char* texts[] = {"x", "y", "z", "w", "xz", "xyz"};
  auto insert_all = [&](const char* table, const Row& row) {
    for (Database* db : dbs) ASSERT_TRUE(db->InsertRow(table, row).ok());
  };
  auto maybe_null_int = [&](double p_null, int64_t hi) {
    return rng.Bernoulli(p_null) ? Value::Null()
                                 : Value::Integer(rng.UniformInt(0, hi));
  };
  // Skewed non-null key: min of two uniforms piles mass on the low values,
  // so per-key cardinalities differ enough for selectivity to matter.
  auto skewed_int = [&](double p_null, int hi) {
    return rng.Bernoulli(p_null)
               ? Value::Null()
               : Value::Integer(std::min(rng.UniformInt(0, hi),
                                         rng.UniformInt(0, hi)));
  };
  for (int i = 0; i < 40; ++i) {
    Row row;
    row.push_back(maybe_null_int(0.25, 5));  // t.a — probe key, NULLs matter
    row.push_back(maybe_null_int(0.25, 5));  // t.b
    row.push_back(rng.Bernoulli(0.2) ? Value::Null()
                                     : Value::Text(texts[rng.Uniform(6)]));
    insert_all("t", row);
  }
  // u dwarfs t (400 vs 40 rows): single-key EXISTS correlations cross the
  // cost model's build-side veto threshold, while composite and
  // non-equality shapes keep taking the rewrite / fallback paths.
  for (int i = 0; i < 400; ++i) {
    Row row;
    row.push_back(skewed_int(0.15, 5));      // u.k — skewed build key
    row.push_back(maybe_null_int(0.25, 5));  // u.v
    row.push_back(rng.Bernoulli(0.3) ? Value::Null()
                                     : Value::Text(texts[rng.Uniform(6)]));
    insert_all("u", row);
  }
  for (int i = 0; i < 15; ++i) {
    Row row;
    row.push_back(maybe_null_int(0.25, 5));  // s.m
    row.push_back(maybe_null_int(0.25, 3));  // s.n
    insert_all("s", row);
  }

  PredicateGen scalar(&rng);
  ExistsGen sub(&rng);
  for (int trial = 0; trial < 90; ++trial) {
    std::string where = sub.Generate();
    if (rng.Bernoulli(0.5)) {
      Predicate p = scalar.Generate(2);
      where = "(" + where + (rng.Bernoulli(0.5) ? " AND " : " OR ") + p.sql +
              ")";
    }
    if (rng.Bernoulli(0.3)) {
      where += (rng.Bernoulli(0.5) ? " AND " : " OR ") + sub.Generate();
    }
    const std::string sql = "SELECT a, b, c FROM t WHERE " + where;
    auto want = none.Execute(sql);
    auto got_rule = rule.Execute(sql);
    auto got_cost = cost.Execute(sql);
    ASSERT_TRUE(want.ok()) << want.status() << "\n" << sql;
    ASSERT_TRUE(got_rule.ok()) << got_rule.status() << "\n" << sql;
    ASSERT_TRUE(got_cost.ok()) << got_cost.status() << "\n" << sql;
    const std::string expected = want.value().ToString();
    if (got_rule.value().ToString() != expected ||
        got_cost.value().ToString() != expected) {
      WritePlanEquivalenceFailure(seed, sql, &none, &rule, &cost);
    }
    ASSERT_EQ(got_rule.value().ToString(), expected) << "rule-only\n" << sql;
    ASSERT_EQ(got_cost.value().ToString(), expected) << "cost-based\n" << sql;
  }

  const ExecStats none_stats = none.stats();
  const ExecStats rule_stats = rule.stats();
  const ExecStats cost_stats = cost.stats();
  // The rule battery still exercises both rewrites and the hash-join path.
  EXPECT_GT(rule_stats.semi_join_rewrites, 0u);
  EXPECT_GT(rule_stats.anti_join_rewrites, 0u);
  EXPECT_GT(rule_stats.hash_join_builds, 0u);
  EXPECT_GT(rule_stats.hash_join_probes, 0u);
  EXPECT_EQ(none_stats.semi_join_rewrites, 0u);
  EXPECT_EQ(none_stats.anti_join_rewrites, 0u);
  // The cost model actually diverged from the rules: it vetoed at least one
  // EXISTS rewrite the rule planner took (build 400 rows vs outer 40, with
  // u_k covering the correlation), yet still rewrote the shapes where a
  // hash build stays cheap.
  EXPECT_GT(cost_stats.cost_exists_kept, 0u);
  EXPECT_GT(cost_stats.semi_join_rewrites + cost_stats.anti_join_rewrites, 0u);
  EXPECT_LT(cost_stats.semi_join_rewrites + cost_stats.anti_join_rewrites,
            rule_stats.semi_join_rewrites + rule_stats.anti_join_rewrites);
}

// Vectorized-executor differential: the same generated battery (scalar
// predicates, rewritable and non-rewritable EXISTS) runs on a vectorized
// database and a scalar-executor database and must return identical rows in
// identical order — chunked scans, selection-vector kernels, and batched
// hash-join probes against the row-at-a-time ground truth. The stats
// assertions prove the vectorized side actually emitted batches (a cutoff
// that silently routed everything through the scalar loop would pass
// vacuously) and that the scalar side never did.
TEST_P(SqldbRandomTest, VectorizedEquivalenceDifferential) {
  Random rng(GetParam() * 104729 + 3);
  Database vec(Database::Options{.enable_planner = true,
                                 .enable_plan_cache = true,
                                 .enable_vectorized_executor = true});
  Database scalar(Database::Options{.enable_planner = true,
                                    .enable_plan_cache = true,
                                    .enable_vectorized_executor = false});
  const char* schema =
      "CREATE TABLE t (a INTEGER, b INTEGER, c VARCHAR(4));"
      "CREATE TABLE u (k INTEGER, v INTEGER, w VARCHAR(4));"
      "CREATE TABLE s (m INTEGER, n INTEGER);";
  ASSERT_TRUE(vec.ExecuteScript(schema).ok());
  ASSERT_TRUE(scalar.ExecuteScript(schema).ok());

  static const char* texts[] = {"x", "y", "z", "w", "xz", "xyz"};
  auto insert_both = [&](const char* table, Row row) {
    ASSERT_TRUE(vec.InsertRow(table, row).ok());
    ASSERT_TRUE(scalar.InsertRow(table, std::move(row)).ok());
  };
  auto maybe_null_int = [&](double p_null, int64_t hi) {
    return rng.Bernoulli(p_null) ? Value::Null()
                                 : Value::Integer(rng.UniformInt(0, hi));
  };
  // 80 rows: wide enough that full scans of `t` clear the small-scan
  // cutoff and run through the chunk kernels.
  for (int i = 0; i < 80; ++i) {
    Row row;
    row.push_back(maybe_null_int(0.25, 5));
    row.push_back(maybe_null_int(0.25, 5));
    row.push_back(rng.Bernoulli(0.2) ? Value::Null()
                                     : Value::Text(texts[rng.Uniform(6)]));
    insert_both("t", std::move(row));
  }
  for (int i = 0; i < 50; ++i) {
    Row row;
    row.push_back(maybe_null_int(0.25, 5));
    row.push_back(maybe_null_int(0.25, 5));
    row.push_back(rng.Bernoulli(0.3) ? Value::Null()
                                     : Value::Text(texts[rng.Uniform(6)]));
    insert_both("u", std::move(row));
  }
  for (int i = 0; i < 15; ++i) {
    Row row;
    row.push_back(maybe_null_int(0.25, 5));
    row.push_back(maybe_null_int(0.25, 3));
    insert_both("s", std::move(row));
  }

  PredicateGen scalar_gen(&rng);
  ExistsGen sub(&rng);
  for (int trial = 0; trial < 90; ++trial) {
    std::string where;
    if (rng.Bernoulli(0.4)) {
      where = scalar_gen.Generate(3).sql;
    } else {
      where = sub.Generate();
      if (rng.Bernoulli(0.5)) {
        Predicate p = scalar_gen.Generate(2);
        where = "(" + where + (rng.Bernoulli(0.5) ? " AND " : " OR ") +
                p.sql + ")";
      }
    }
    const std::string sql = "SELECT a, b, c FROM t WHERE " + where;
    auto v = vec.Execute(sql);
    auto s = scalar.Execute(sql);
    ASSERT_TRUE(v.ok()) << v.status() << "\n" << sql;
    ASSERT_TRUE(s.ok()) << s.status() << "\n" << sql;
    ASSERT_EQ(v.value().ToString(), s.value().ToString()) << sql;
  }

  const ExecStats vec_stats = vec.stats();
  const ExecStats scalar_stats = scalar.stats();
  EXPECT_GT(vec_stats.batches, 0u);
  EXPECT_GT(vec_stats.batch_rows, 0u);
  EXPECT_GT(vec_stats.vectorized_filters, 0u);
  EXPECT_EQ(scalar_stats.batches, 0u);
  EXPECT_EQ(scalar_stats.vectorized_filters, 0u);
}

TEST_P(SqldbRandomTest, DistinctAndOrderByAgreeWithBruteForce) {
  Random rng(GetParam() * 1000003);
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  std::vector<int64_t> values;
  for (int i = 0; i < 40; ++i) {
    int64_t v = rng.UniformInt(0, 9);
    values.push_back(v);
    ASSERT_TRUE(
        db.Execute("INSERT INTO t VALUES (" + std::to_string(v) + ")").ok());
  }
  auto result = db.Execute("SELECT DISTINCT a FROM t ORDER BY a DESC");
  ASSERT_TRUE(result.ok());
  std::set<int64_t> expected(values.begin(), values.end());
  ASSERT_EQ(result.value().rows.size(), expected.size());
  auto it = expected.rbegin();
  for (const Row& row : result.value().rows) {
    EXPECT_EQ(row[0].AsInteger(), *it);
    ++it;
  }
}

// Storage differential: one seeded DML stream (INSERT / UPDATE / DELETE with
// an interleaved SELECT battery) runs against an in-memory database and a
// disk-backed one; every query must return identical rows in identical
// order throughout. The disk database then closes (checkpointing) and
// reopens, and the recovered contents must still agree with the in-memory
// oracle — including tombstone layout, which the slot-ordered scans expose.
TEST_P(SqldbRandomTest, DiskBackedDifferentialAndReopen) {
  const uint64_t seed = GetParam();
  Random rng(seed * 104729 + 17);
  const std::string dir =
      ::testing::TempDir() + "p3pdb_random_storage_" + std::to_string(seed);
  std::filesystem::remove_all(dir);

  const char* schema =
      "CREATE TABLE t (a INTEGER, b INTEGER, c VARCHAR(4));"
      "CREATE INDEX idx_t_a ON t (a);";
  Database memory;
  ASSERT_TRUE(memory.ExecuteScript(schema).ok());

  static const char* texts[] = {"x", "y", "z", "w", "xz", "xyz"};
  auto random_value_list = [&] {
    std::string a = rng.Bernoulli(0.2)
                        ? "NULL"
                        : std::to_string(rng.UniformInt(0, 5));
    std::string b = rng.Bernoulli(0.2)
                        ? "NULL"
                        : std::to_string(rng.UniformInt(0, 5));
    std::string c = rng.Bernoulli(0.2)
                        ? "NULL"
                        : "'" + std::string(texts[rng.Uniform(6)]) + "'";
    return "(" + a + ", " + b + ", " + c + ")";
  };
  PredicateGen gen(&rng);
  auto random_dml = [&]() -> std::string {
    switch (rng.Uniform(4)) {
      case 0:
      case 1:
        return "INSERT INTO t VALUES " + random_value_list();
      case 2:
        return "UPDATE t SET b = " +
               (rng.Bernoulli(0.2) ? std::string("NULL")
                                   : std::to_string(rng.UniformInt(0, 5))) +
               " WHERE " + gen.Generate(2).sql;
      default:
        return "DELETE FROM t WHERE " + gen.Generate(2).sql;
    }
  };
  auto compare_battery = [&](Database& disk, const char* when) {
    const std::string queries[] = {
        "SELECT a, b, c FROM t",
        "SELECT COUNT(*) FROM t",
        "SELECT a, COUNT(*) AS n FROM t GROUP BY a ORDER BY 1, 2",
        "SELECT a, b, c FROM t WHERE " + gen.Generate(3).sql,
    };
    for (const std::string& sql : queries) {
      auto want = memory.Execute(sql);
      auto got = disk.Execute(sql);
      ASSERT_TRUE(want.ok()) << want.status() << "\n" << sql;
      ASSERT_TRUE(got.ok()) << got.status() << "\n" << sql;
      ASSERT_EQ(want.value().ToString(), got.value().ToString())
          << when << " seed=" << seed << "\n"
          << sql;
    }
  };

  // Record the DML stream so the reopened database's oracle is the same
  // in-memory database (mutated once, not replayed).
  {
    Database disk(Database::Options{.storage_path = dir});
    ASSERT_TRUE(disk.storage_status().ok()) << disk.storage_status();
    ASSERT_TRUE(disk.ExecuteScript(schema).ok());
    for (int step = 0; step < 120; ++step) {
      const std::string sql = random_dml();
      auto want = memory.Execute(sql);
      auto got = disk.Execute(sql);
      ASSERT_EQ(want.ok(), got.ok()) << sql << "\n"
                                     << want.status() << "\n"
                                     << got.status();
      if (step % 10 == 0) compare_battery(disk, "live");
    }
    compare_battery(disk, "pre-close");
  }

  // Reopen: recovery (checkpoint load + WAL replay) must reproduce the
  // exact same physical state the oracle holds.
  {
    Database reopened(Database::Options{.storage_path = dir});
    ASSERT_TRUE(reopened.storage_status().ok()) << reopened.storage_status();
    compare_battery(reopened, "reopened");
    // The recovered database stays writable and durable: one more burst of
    // DML, applied to both sides, must keep them identical.
    for (int step = 0; step < 30; ++step) {
      const std::string sql = random_dml();
      auto want = memory.Execute(sql);
      auto got = reopened.Execute(sql);
      ASSERT_EQ(want.ok(), got.ok()) << sql;
    }
    compare_battery(reopened, "post-reopen-dml");
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace p3pdb::sqldb
