// Randomized differential test for the SQL executor: random predicates over
// random data, evaluated twice — once by the engine, once by a direct
// brute-force C++ interpreter with explicit three-valued logic. The two
// must agree on every row count.

#include <gtest/gtest.h>

#include <functional>
#include <optional>

#include "common/random.h"
#include "sqldb/database.h"
#include "sqldb/executor.h"

namespace p3pdb::sqldb {
namespace {

using TriBool = std::optional<bool>;  // nullopt = SQL NULL / unknown

struct Predicate {
  std::string sql;
  std::function<TriBool(const Row&)> eval;
};

TriBool TriAnd(TriBool a, TriBool b) {
  if (a.has_value() && !*a) return false;
  if (b.has_value() && !*b) return false;
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  return true;
}

TriBool TriOr(TriBool a, TriBool b) {
  if (a.has_value() && *a) return true;
  if (b.has_value() && *b) return true;
  if (!a.has_value() || !b.has_value()) return std::nullopt;
  return false;
}

TriBool TriNot(TriBool a) {
  if (!a.has_value()) return std::nullopt;
  return !*a;
}

/// Columns: 0 = a INTEGER, 1 = b INTEGER, 2 = c VARCHAR.
class PredicateGen {
 public:
  explicit PredicateGen(Random* rng) : rng_(rng) {}

  Predicate Generate(int depth) {
    if (depth <= 0 || rng_->Bernoulli(0.4)) return Leaf();
    switch (rng_->Uniform(3)) {
      case 0: {
        Predicate l = Generate(depth - 1), r = Generate(depth - 1);
        return Predicate{
            "(" + l.sql + " AND " + r.sql + ")",
            [l, r](const Row& row) { return TriAnd(l.eval(row), r.eval(row)); }};
      }
      case 1: {
        Predicate l = Generate(depth - 1), r = Generate(depth - 1);
        return Predicate{
            "(" + l.sql + " OR " + r.sql + ")",
            [l, r](const Row& row) { return TriOr(l.eval(row), r.eval(row)); }};
      }
      default: {
        Predicate inner = Generate(depth - 1);
        return Predicate{"NOT (" + inner.sql + ")", [inner](const Row& row) {
                           return TriNot(inner.eval(row));
                         }};
      }
    }
  }

 private:
  Predicate Leaf() {
    switch (rng_->Uniform(5)) {
      case 0: {  // integer comparison against a literal
        size_t col = rng_->Uniform(2);
        int64_t lit = rng_->UniformInt(0, 5);
        const char* ops[] = {"=", "<>", "<", "<=", ">", ">="};
        int op = rng_->UniformInt(0, 5);
        std::string col_name = col == 0 ? "a" : "b";
        Predicate p;
        p.sql = col_name + " " + ops[op] + " " + std::to_string(lit);
        p.eval = [col, lit, op](const Row& row) -> TriBool {
          if (row[col].is_null()) return std::nullopt;
          int64_t v = row[col].AsInteger();
          switch (op) {
            case 0: return v == lit;
            case 1: return v != lit;
            case 2: return v < lit;
            case 3: return v <= lit;
            case 4: return v > lit;
            default: return v >= lit;
          }
        };
        return p;
      }
      case 1: {  // column-to-column comparison
        Predicate p;
        p.sql = "a = b";
        p.eval = [](const Row& row) -> TriBool {
          if (row[0].is_null() || row[1].is_null()) return std::nullopt;
          return row[0].AsInteger() == row[1].AsInteger();
        };
        return p;
      }
      case 2: {  // IS [NOT] NULL
        size_t col = rng_->Uniform(3);
        bool negated = rng_->Bernoulli(0.5);
        static const char* names[] = {"a", "b", "c"};
        Predicate p;
        p.sql = std::string(names[col]) + (negated ? " IS NOT NULL"
                                                   : " IS NULL");
        p.eval = [col, negated](const Row& row) -> TriBool {
          bool is_null = row[col].is_null();
          return negated ? !is_null : is_null;
        };
        return p;
      }
      case 3: {  // IN list over text
        int n = rng_->UniformInt(1, 3);
        std::vector<std::string> items;
        static const char* pool[] = {"x", "y", "z", "w"};
        for (int i = 0; i < n; ++i) items.push_back(pool[rng_->Uniform(4)]);
        bool negated = rng_->Bernoulli(0.3);
        Predicate p;
        p.sql = std::string("c") + (negated ? " NOT IN (" : " IN (");
        for (int i = 0; i < n; ++i) {
          if (i > 0) p.sql += ", ";
          p.sql += "'" + items[i] + "'";
        }
        p.sql += ")";
        p.eval = [items, negated](const Row& row) -> TriBool {
          if (row[2].is_null()) return std::nullopt;
          bool found = false;
          for (const std::string& item : items) {
            if (row[2].AsText() == item) found = true;
          }
          TriBool base = found;
          return negated ? TriNot(base) : base;
        };
        return p;
      }
      default: {  // LIKE on text
        static const char* patterns[] = {"%x%", "x%", "%z", "_", "%", "x_z"};
        std::string pattern = patterns[rng_->Uniform(6)];
        Predicate p;
        p.sql = "c LIKE '" + pattern + "'";
        p.eval = [pattern](const Row& row) -> TriBool {
          if (row[2].is_null()) return std::nullopt;
          return SqlLikeMatch(row[2].AsText(), pattern);
        };
        return p;
      }
    }
  }

  Random* rng_;
};

class SqldbRandomTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SqldbRandomTest,
                         ::testing::Values(3, 7, 11, 19, 23, 42));

TEST_P(SqldbRandomTest, ExecutorAgreesWithBruteForce) {
  Random rng(GetParam());
  Database db;
  ASSERT_TRUE(
      db.ExecuteScript("CREATE TABLE t (a INTEGER, b INTEGER, c VARCHAR(4));")
          .ok());

  // Random data with plenty of NULLs and duplicate values.
  std::vector<Row> rows;
  static const char* texts[] = {"x", "y", "z", "w", "xz", "xyz"};
  for (int i = 0; i < 60; ++i) {
    Row row;
    row.push_back(rng.Bernoulli(0.2) ? Value::Null()
                                     : Value::Integer(rng.UniformInt(0, 5)));
    row.push_back(rng.Bernoulli(0.2) ? Value::Null()
                                     : Value::Integer(rng.UniformInt(0, 5)));
    row.push_back(rng.Bernoulli(0.2)
                      ? Value::Null()
                      : Value::Text(texts[rng.Uniform(6)]));
    ASSERT_TRUE(db.InsertRow("t", row).ok());
    rows.push_back(std::move(row));
  }

  PredicateGen gen(&rng);
  for (int trial = 0; trial < 60; ++trial) {
    Predicate pred = gen.Generate(3);
    auto result =
        db.Execute("SELECT COUNT(*) FROM t WHERE " + pred.sql);
    ASSERT_TRUE(result.ok()) << result.status() << "\nWHERE " << pred.sql;
    int64_t engine_count = result.value().rows[0][0].AsInteger();

    int64_t brute_count = 0;
    for (const Row& row : rows) {
      TriBool verdict = pred.eval(row);
      if (verdict.has_value() && *verdict) ++brute_count;
    }
    ASSERT_EQ(engine_count, brute_count) << "WHERE " << pred.sql;
  }
}

TEST_P(SqldbRandomTest, DistinctAndOrderByAgreeWithBruteForce) {
  Random rng(GetParam() * 1000003);
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  std::vector<int64_t> values;
  for (int i = 0; i < 40; ++i) {
    int64_t v = rng.UniformInt(0, 9);
    values.push_back(v);
    ASSERT_TRUE(
        db.Execute("INSERT INTO t VALUES (" + std::to_string(v) + ")").ok());
  }
  auto result = db.Execute("SELECT DISTINCT a FROM t ORDER BY a DESC");
  ASSERT_TRUE(result.ok());
  std::set<int64_t> expected(values.begin(), values.end());
  ASSERT_EQ(result.value().rows.size(), expected.size());
  auto it = expected.rbegin();
  for (const Row& row : result.value().rows) {
    EXPECT_EQ(row[0].AsInteger(), *it);
    ++it;
  }
}

}  // namespace
}  // namespace p3pdb::sqldb
