// Accuracy tests for the statistics catalog (stats.h): the cost model is
// only as good as its inputs, so this file pins the contract each estimate
// carries. Exact quantities (row count, null count, min/max) must be exact
// through arbitrary seeded insert/delete churn; the HLL distinct-count
// estimate must stay inside its sketch error bounds on both skewed
// (Zipfian) and near-unique data; and a disk-backed database must come back
// from a reopen with the same statistics it closed with.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "sqldb/database.h"
#include "sqldb/stats.h"

namespace p3pdb::sqldb {
namespace {

// HLL with p=9 has standard error 1.04/sqrt(512) = 4.6%; three sigma plus
// a little slack for the small-range linear-counting handoff.
constexpr double kNdvTolerance = 0.15;

void ExpectNdvWithin(double estimate, size_t actual) {
  ASSERT_GT(actual, 0u);
  const double rel =
      std::abs(estimate - static_cast<double>(actual)) /
      static_cast<double>(actual);
  EXPECT_LE(rel, kNdvTolerance)
      << "estimate " << estimate << " vs actual " << actual;
}

/// Zipf(s=1) sampler over ranks [1, n]: precomputed harmonic CDF, inverted
/// by binary search. Deterministic for a fixed Random seed.
class Zipf {
 public:
  explicit Zipf(size_t n) : cdf_(n) {
    double total = 0.0;
    for (size_t k = 1; k <= n; ++k) {
      total += 1.0 / static_cast<double>(k);
      cdf_[k - 1] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Sample(Random* r) const {
    const double u = r->UniformDouble();
    return static_cast<size_t>(
               std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin()) +
           1;
  }

 private:
  std::vector<double> cdf_;
};

TEST(StatsAccuracyTest, NearUniqueNdvWithinSketchBounds) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  constexpr int kRows = 5000;
  for (int i = 0; i < kRows; ++i) {
    ASSERT_TRUE(db.InsertRow("t", {Value::Integer(i)}).ok());
  }
  const Table* t = db.LookupTable("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(db.stats_catalog().EstimatedRows(t), kRows);
  ExpectNdvWithin(db.stats_catalog().EstimatedNdv(t, 0), kRows);
}

TEST(StatsAccuracyTest, ZipfianNdvWithinSketchBounds) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER, s TEXT);").ok());
  Random rng(20260808);
  Zipf zipf(1200);
  std::set<int64_t> distinct_a;
  std::set<std::string> distinct_s;
  for (int i = 0; i < 20000; ++i) {
    const int64_t a = static_cast<int64_t>(zipf.Sample(&rng));
    const std::string s = "v" + std::to_string(zipf.Sample(&rng));
    distinct_a.insert(a);
    distinct_s.insert(s);
    ASSERT_TRUE(db.InsertRow("t", {Value::Integer(a), Value::Text(s)}).ok());
  }
  const Table* t = db.LookupTable("t");
  ASSERT_NE(t, nullptr);
  ExpectNdvWithin(db.stats_catalog().EstimatedNdv(t, 0), distinct_a.size());
  ExpectNdvWithin(db.stats_catalog().EstimatedNdv(t, 1), distinct_s.size());
}

TEST(StatsAccuracyTest, ExactStatsExactThroughSeededChurn) {
  // Randomized insert/delete churn with NULLs mixed in; after every phase
  // the exact quantities (rows, nulls, min, max) must match a brute-force
  // recompute of the live rows, and NDV must track the live distinct set.
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  const Table* t = db.LookupTable("t");
  ASSERT_NE(t, nullptr);
  Random rng(97);

  auto verify = [&] {
    uint64_t rows = 0, nulls = 0;
    std::optional<int64_t> min, max;
    std::set<int64_t> distinct;
    for (size_t id = 0; id < t->SlotCount(); ++id) {
      if (!t->IsLive(id)) continue;
      ++rows;
      const Value& v = t->RowAt(id)[0];
      if (v.is_null()) {
        ++nulls;
        continue;
      }
      const int64_t x = v.AsInteger();
      distinct.insert(x);
      min = min.has_value() ? std::min(*min, x) : x;
      max = max.has_value() ? std::max(*max, x) : x;
    }
    auto snap = db.stats_catalog().Snapshot(t);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->row_count, rows);
    ASSERT_EQ(snap->columns.size(), 1u);
    const ColumnStatsSnapshot& col = snap->columns[0];
    EXPECT_EQ(col.null_count, nulls);
    ASSERT_EQ(col.min.has_value(), min.has_value());
    ASSERT_EQ(col.max.has_value(), max.has_value());
    if (min.has_value()) EXPECT_EQ(col.min->AsInteger(), *min);
    if (max.has_value()) EXPECT_EQ(col.max->AsInteger(), *max);
    const double nf = db.stats_catalog().NullFraction(t, 0);
    EXPECT_DOUBLE_EQ(nf, rows == 0 ? 0.0
                                   : static_cast<double>(nulls) /
                                         static_cast<double>(rows));
    if (!distinct.empty()) ExpectNdvWithin(col.ndv, distinct.size());
  };

  for (int phase = 0; phase < 6; ++phase) {
    // Insert burst: skewed values, ~12% NULLs.
    const int inserts = 200 + rng.UniformInt(0, 400);
    for (int i = 0; i < inserts; ++i) {
      Value v = rng.Bernoulli(0.12)
                    ? Value::Null()
                    : Value::Integer(rng.UniformInt(0, 1000));
      ASSERT_TRUE(db.InsertRow("t", {std::move(v)}).ok());
    }
    verify();
    // Delete sweep: drop ~40% of live rows, extrema included — exercises
    // the min/max invalidation and the NDV stale-rebuild path.
    std::vector<size_t> live;
    for (size_t id = 0; id < t->SlotCount(); ++id) {
      if (t->IsLive(id)) live.push_back(id);
    }
    for (size_t id : live) {
      if (!rng.Bernoulli(0.4)) continue;
      if (!t->IsLive(id) || t->RowAt(id)[0].is_null()) continue;
      ASSERT_TRUE(db.Execute("DELETE FROM t WHERE a = " +
                             t->RowAt(id)[0].ToString())
                      .ok());
    }
    // Also delete NULL rows through SQL so the null counter sees churn.
    if (phase % 2 == 1) {
      ASSERT_TRUE(db.Execute("DELETE FROM t WHERE a IS NULL").ok());
    }
    verify();
  }
}

TEST(StatsAccuracyTest, StatsSurviveDiskBackedReopen) {
  const std::string dir = "stats_accuracy_reopen.tmp";
  std::filesystem::remove_all(dir);
  Random rng(4242);
  Zipf zipf(300);

  TableStatsSnapshot before;
  {
    Database db(Database::Options{.storage_path = dir});
    ASSERT_TRUE(db.storage_status().ok());
    ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER, s TEXT);").ok());
    for (int i = 0; i < 3000; ++i) {
      Value a = rng.Bernoulli(0.1)
                    ? Value::Null()
                    : Value::Integer(static_cast<int64_t>(zipf.Sample(&rng)));
      ASSERT_TRUE(
          db.InsertRow("t", {std::move(a),
                             Value::Text("k" + std::to_string(
                                                   zipf.Sample(&rng)))})
              .ok());
    }
    // Delete churn so the reopened rebuild must reflect live rows only.
    ASSERT_TRUE(db.Execute("DELETE FROM t WHERE a = 1").ok());
    ASSERT_TRUE(db.Execute("DELETE FROM t WHERE a = 7").ok());
    const Table* t = db.LookupTable("t");
    ASSERT_NE(t, nullptr);
    // Force a rebuild before snapshotting: the incremental sketch may still
    // contain deleted values, while the reopened catalog is rebuilt from
    // live rows. Analyze pins both sides to the same definition.
    db.mutable_stats_catalog().Analyze(t);
    auto snap = db.stats_catalog().Snapshot(t);
    ASSERT_TRUE(snap.has_value());
    before = *snap;
  }  // destructor checkpoints

  Database reopened(Database::Options{.storage_path = dir});
  ASSERT_TRUE(reopened.storage_status().ok());
  const Table* t = reopened.LookupTable("t");
  ASSERT_NE(t, nullptr);
  auto after = reopened.stats_catalog().Snapshot(t);
  ASSERT_TRUE(after.has_value());

  EXPECT_EQ(after->row_count, before.row_count);
  ASSERT_EQ(after->columns.size(), before.columns.size());
  for (size_t c = 0; c < before.columns.size(); ++c) {
    const ColumnStatsSnapshot& b = before.columns[c];
    const ColumnStatsSnapshot& a = after->columns[c];
    // The HLL registers are max-based and order-insensitive, so a rebuild
    // from the recovered live rows is bit-identical to the pre-close
    // rebuild: the *estimate* must match exactly, not just approximately.
    EXPECT_DOUBLE_EQ(a.ndv, b.ndv) << "column " << c;
    EXPECT_EQ(a.null_count, b.null_count) << "column " << c;
    ASSERT_EQ(a.min.has_value(), b.min.has_value()) << "column " << c;
    ASSERT_EQ(a.max.has_value(), b.max.has_value()) << "column " << c;
    if (b.min.has_value()) {
      EXPECT_EQ(Value::OrderCompare(*a.min, *b.min), 0) << "column " << c;
    }
    if (b.max.has_value()) {
      EXPECT_EQ(Value::OrderCompare(*a.max, *b.max), 0) << "column " << c;
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(StatsAccuracyTest, CostModelOffCostsNothing) {
  // The ablation guarantee: with enable_cost_model off, no table is
  // tracked and no maintenance counters move.
  Database db(Database::Options{.enable_cost_model = false});
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.InsertRow("t", {Value::Integer(i)}).ok());
  }
  const Table* t = db.LookupTable("t");
  ASSERT_NE(t, nullptr);
  EXPECT_FALSE(db.stats_catalog().Snapshot(t).has_value());
  const StatsCounters counters = db.stats_catalog().counters();
  EXPECT_EQ(counters.updates, 0u);
  EXPECT_EQ(counters.rebuilds, 0u);
  // Estimates fall back to the table's own row count.
  EXPECT_EQ(db.stats_catalog().EstimatedRows(t), 100.0);
}

}  // namespace
}  // namespace p3pdb::sqldb
