// Tests for the executor's statistics aggregation: AtomicExecStats must
// lose nothing under concurrent Merge, and concurrent PreparedStatement
// executions must tally exactly into the Database aggregate.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sqldb/database.h"
#include "sqldb/query_result.h"
#include "sqldb/value.h"

namespace p3pdb::sqldb {
namespace {

TEST(AtomicExecStatsTest, MergeAccumulatesEveryField) {
  AtomicExecStats agg;
  ExecStats s;
  s.statements_executed = 1;
  s.rows_scanned = 2;
  s.index_lookups = 3;
  s.full_scans = 4;
  s.subquery_evals = 5;
  s.comparisons = 6;
  agg.Merge(s);
  agg.Merge(s);
  ExecStats snap = agg.Snapshot();
  EXPECT_EQ(snap.statements_executed, 2u);
  EXPECT_EQ(snap.rows_scanned, 4u);
  EXPECT_EQ(snap.index_lookups, 6u);
  EXPECT_EQ(snap.full_scans, 8u);
  EXPECT_EQ(snap.subquery_evals, 10u);
  EXPECT_EQ(snap.comparisons, 12u);

  agg.Reset();
  snap = agg.Snapshot();
  EXPECT_EQ(snap.statements_executed, 0u);
  EXPECT_EQ(snap.comparisons, 0u);
}

TEST(AtomicExecStatsTest, ConcurrentMergesAreExact) {
  AtomicExecStats agg;
  constexpr int kThreads = 8;
  constexpr int kMergesPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      ExecStats s;
      s.statements_executed = 1;
      s.rows_scanned = 3;
      s.index_lookups = 1;
      s.full_scans = 0;
      s.subquery_evals = 2;
      s.comparisons = 7;
      for (int i = 0; i < kMergesPerThread; ++i) agg.Merge(s);
    });
  }
  for (auto& w : workers) w.join();
  const uint64_t n = uint64_t{kThreads} * kMergesPerThread;
  ExecStats snap = agg.Snapshot();
  EXPECT_EQ(snap.statements_executed, n);
  EXPECT_EQ(snap.rows_scanned, 3 * n);
  EXPECT_EQ(snap.index_lookups, n);
  EXPECT_EQ(snap.full_scans, 0u);
  EXPECT_EQ(snap.subquery_evals, 2 * n);
  EXPECT_EQ(snap.comparisons, 7 * n);
}

TEST(AtomicExecStatsTest, ConcurrentPreparedExecutionsTallyExactly) {
  // Each Execute fills a private ExecStats and merges it once, so the
  // database aggregate must come out exact no matter the interleaving.
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE t (id INTEGER, v INTEGER, "
                    "PRIMARY KEY (id));")
                  .ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", " + std::to_string(i * i) + ")")
                    .ok());
  }
  auto prepared = db.Prepare("SELECT v FROM t WHERE id = ?");
  ASSERT_TRUE(prepared.ok());
  db.ResetStats();

  constexpr int kThreads = 8;
  constexpr int kExecsPerThread = 500;
  std::vector<std::thread> workers;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kExecsPerThread; ++i) {
        std::vector<Value> params = {Value::Integer((t + i) % 16)};
        auto result = prepared.value().Execute(params);
        if (!result.ok() || result.value().rows.size() != 1) ++failures[t];
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;

  const uint64_t n = uint64_t{kThreads} * kExecsPerThread;
  ExecStats snap = db.stats();
  EXPECT_EQ(snap.statements_executed, n);
  // Every lookup is a point probe on the primary key: one index lookup and
  // one row scanned per execution, never a full scan.
  EXPECT_EQ(snap.index_lookups, n);
  EXPECT_EQ(snap.rows_scanned, n);
  EXPECT_EQ(snap.full_scans, 0u);
}

}  // namespace
}  // namespace p3pdb::sqldb
