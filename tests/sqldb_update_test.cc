// Tests for UPDATE: assignments referencing current row values, WHERE
// filtering, index maintenance, and constraint interaction.

#include <gtest/gtest.h>

#include "sqldb/database.h"

namespace p3pdb::sqldb {
namespace {

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteScript(
                      "CREATE TABLE t (k INTEGER NOT NULL, v VARCHAR(10), "
                      "n INTEGER, PRIMARY KEY (k));"
                      "INSERT INTO t VALUES (1, 'a', 10), (2, 'b', 20), "
                      "(3, 'c', 30);")
                    .ok());
  }

  int64_t Count(const std::string& where) {
    auto result = db_.Execute("SELECT COUNT(*) FROM t WHERE " + where);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result.value().rows[0][0].AsInteger() : -1;
  }

  Database db_;
};

TEST_F(UpdateTest, UpdateWithWhere) {
  auto result = db_.Execute("UPDATE t SET v = 'x' WHERE k >= 2");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().rows_affected, 2);
  EXPECT_EQ(Count("v = 'x'"), 2);
  EXPECT_EQ(Count("v = 'a'"), 1);
}

TEST_F(UpdateTest, UpdateAllRows) {
  auto result = db_.Execute("UPDATE t SET n = 0");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows_affected, 3);
  EXPECT_EQ(Count("n = 0"), 3);
}

TEST_F(UpdateTest, AssignmentSeesOldValues) {
  // Swap-like update: both assignments read the pre-update row.
  ASSERT_TRUE(db_.Execute("UPDATE t SET n = k, k = n WHERE k = 1").ok());
  EXPECT_EQ(Count("k = 10 AND n = 1"), 1);
}

TEST_F(UpdateTest, MultipleAssignments) {
  ASSERT_TRUE(
      db_.Execute("UPDATE t SET v = 'z', n = NULL WHERE k = 2").ok());
  EXPECT_EQ(Count("v = 'z' AND n IS NULL"), 1);
}

TEST_F(UpdateTest, IndexFollowsUpdatedKey) {
  ASSERT_TRUE(db_.Execute("UPDATE t SET k = 99 WHERE k = 1").ok());
  db_.ResetStats();
  EXPECT_EQ(Count("k = 99"), 1);
  EXPECT_GE(db_.stats().index_lookups, 1u);
  EXPECT_EQ(Count("k = 1"), 0);
  // The freed key is insertable again.
  EXPECT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 'new', 0)").ok());
}

TEST_F(UpdateTest, PrimaryKeyConflictRejectedAndRowPreserved) {
  auto clash = db_.Execute("UPDATE t SET k = 2 WHERE k = 1");
  ASSERT_FALSE(clash.ok());
  EXPECT_EQ(clash.status().code(), StatusCode::kAlreadyExists);
  // The row that failed to move is still there with its old key.
  EXPECT_EQ(Count("k = 1"), 1);
  EXPECT_EQ(Count("1 = 1"), 3);
}

TEST_F(UpdateTest, TypeAndNullabilityChecked) {
  EXPECT_FALSE(db_.Execute("UPDATE t SET n = 'text' WHERE k = 1").ok());
  EXPECT_FALSE(db_.Execute("UPDATE t SET k = NULL WHERE k = 1").ok());
}

TEST_F(UpdateTest, UnknownTableOrColumn) {
  EXPECT_FALSE(db_.Execute("UPDATE missing SET a = 1").ok());
  EXPECT_FALSE(db_.Execute("UPDATE t SET missing = 1").ok());
  EXPECT_FALSE(db_.Execute("UPDATE t SET v = 'x' WHERE missing = 1").ok());
}

TEST_F(UpdateTest, ReExecutionAfterErrorWorks) {
  // Statement state must be restored after a failed bind.
  ASSERT_FALSE(db_.Execute("UPDATE t SET v = nope WHERE k = 1").ok());
  ASSERT_TRUE(db_.Execute("UPDATE t SET v = 'ok' WHERE k = 1").ok());
  EXPECT_EQ(Count("v = 'ok'"), 1);
}

TEST_F(UpdateTest, ForeignKeyEnforcedOnUpdate) {
  ASSERT_TRUE(db_.ExecuteScript(
                    "CREATE TABLE child (k INTEGER, "
                    "FOREIGN KEY (k) REFERENCES t (k));"
                    "INSERT INTO child VALUES (1);")
                  .ok());
  EXPECT_FALSE(db_.Execute("UPDATE child SET k = 77").ok());
  EXPECT_TRUE(db_.Execute("UPDATE child SET k = 3").ok());
}

TEST_F(UpdateTest, CorrelatedSubqueryInWhere) {
  ASSERT_TRUE(db_.ExecuteScript(
                    "CREATE TABLE marks (k INTEGER);"
                    "INSERT INTO marks VALUES (2);")
                  .ok());
  ASSERT_TRUE(db_.Execute(
                    "UPDATE t SET v = 'marked' WHERE EXISTS "
                    "(SELECT * FROM marks WHERE marks.k = t.k)")
                  .ok());
  EXPECT_EQ(Count("v = 'marked'"), 1);
  EXPECT_EQ(Count("v = 'marked' AND k = 2"), 1);
}

}  // namespace
}  // namespace p3pdb::sqldb
