// Unit tests for sqldb internals: Value three-valued comparison semantics,
// schema/row validation, index maintenance, and prepared statements.

#include <gtest/gtest.h>

#include "sqldb/database.h"
#include "sqldb/table.h"
#include "sqldb/value.h"

namespace p3pdb::sqldb {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Integer(42).AsInteger(), 42);
  EXPECT_EQ(Value::Text("x").AsText(), "x");
  EXPECT_TRUE(Value::Boolean(true).AsBoolean());
  EXPECT_EQ(Value::Integer(1).type(), ValueType::kInteger);
  EXPECT_EQ(Value::Text("").type(), ValueType::kText);
}

TEST(ValueTest, ToStringQuotesText) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Integer(-5).ToString(), "-5");
  EXPECT_EQ(Value::Text("it's").ToString(), "'it''s'");
  EXPECT_EQ(Value::Boolean(false).ToString(), "FALSE");
  EXPECT_EQ(Value::Text("plain").ToDisplayString(), "plain");
}

TEST(ValueTest, CompareEqThreeValued) {
  auto eq = Value::CompareEq(Value::Integer(1), Value::Integer(1));
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value().AsBoolean());

  auto ne = Value::CompareEq(Value::Text("a"), Value::Text("b"));
  ASSERT_TRUE(ne.ok());
  EXPECT_FALSE(ne.value().AsBoolean());

  // NULL poisons comparisons into NULL, including NULL = NULL.
  EXPECT_TRUE(
      Value::CompareEq(Value::Null(), Value::Integer(1)).value().is_null());
  EXPECT_TRUE(
      Value::CompareEq(Value::Null(), Value::Null()).value().is_null());

  // Mixed non-null types are an error, not false.
  EXPECT_FALSE(Value::CompareEq(Value::Integer(1), Value::Text("1")).ok());
}

TEST(ValueTest, CompareLt) {
  EXPECT_TRUE(Value::CompareLt(Value::Integer(1), Value::Integer(2))
                  .value()
                  .AsBoolean());
  EXPECT_FALSE(Value::CompareLt(Value::Text("b"), Value::Text("a"))
                   .value()
                   .AsBoolean());
  EXPECT_TRUE(
      Value::CompareLt(Value::Null(), Value::Integer(1)).value().is_null());
  // Booleans have no order in this dialect.
  EXPECT_FALSE(
      Value::CompareLt(Value::Boolean(false), Value::Boolean(true)).ok());
}

TEST(ValueTest, OrderCompareTotalOrder) {
  // NULL < integers < text < boolean by type rank; within type by value.
  EXPECT_LT(Value::OrderCompare(Value::Null(), Value::Integer(0)), 0);
  EXPECT_LT(Value::OrderCompare(Value::Integer(5), Value::Text("")), 0);
  EXPECT_EQ(Value::OrderCompare(Value::Integer(3), Value::Integer(3)), 0);
  EXPECT_GT(Value::OrderCompare(Value::Text("b"), Value::Text("a")), 0);
  EXPECT_EQ(Value::OrderCompare(Value::Null(), Value::Null()), 0);
}

TEST(ValueTest, HashConsistentWithOrderEquality) {
  EXPECT_EQ(Value::Integer(7).Hash(), Value::Integer(7).Hash());
  EXPECT_EQ(Value::Text("abc").Hash(), Value::Text("abc").Hash());
  EXPECT_EQ(Value::Null().Hash(), Value::Null().Hash());
}

TEST(TableSchemaTest, ValidateRow) {
  TableSchema schema("t", {ColumnDef{"a", ColumnType::kInteger, false},
                           ColumnDef{"b", ColumnType::kText, true}});
  EXPECT_TRUE(
      schema.ValidateRow({Value::Integer(1), Value::Text("x")}).ok());
  EXPECT_TRUE(schema.ValidateRow({Value::Integer(1), Value::Null()}).ok());
  // Arity.
  EXPECT_FALSE(schema.ValidateRow({Value::Integer(1)}).ok());
  // NOT NULL.
  EXPECT_FALSE(schema.ValidateRow({Value::Null(), Value::Null()}).ok());
  // Type mismatch.
  EXPECT_FALSE(
      schema.ValidateRow({Value::Text("1"), Value::Null()}).ok());
  // Booleans are not storable.
  EXPECT_FALSE(
      schema.ValidateRow({Value::Integer(1), Value::Boolean(true)}).ok());
}

TEST(TableSchemaTest, ColumnIndexCaseInsensitive) {
  TableSchema schema("t", {ColumnDef{"Policy_Id", ColumnType::kInteger,
                                     false}});
  EXPECT_EQ(schema.ColumnIndex("policy_id"), 0u);
  EXPECT_EQ(schema.ColumnIndex("POLICY_ID"), 0u);
  EXPECT_FALSE(schema.ColumnIndex("nope").has_value());
}

TEST(TableSchemaTest, ToCreateTableSqlRoundTrips) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                    "CREATE TABLE parent (id INTEGER NOT NULL, "
                    "PRIMARY KEY (id));")
                  .ok());
  const Table* parent = db.LookupTable("parent");
  ASSERT_NE(parent, nullptr);
  std::string ddl = parent->schema().ToCreateTableSql();
  Database db2;
  EXPECT_TRUE(db2.ExecuteScript(ddl).ok()) << ddl;
}

TEST(TableTest, InsertDeleteAndIndexMaintenance) {
  TableSchema schema("t", {ColumnDef{"k", ColumnType::kInteger, false},
                           ColumnDef{"v", ColumnType::kText, true}});
  schema.set_primary_key({"k"});
  Table table(std::move(schema));
  ASSERT_TRUE(table.Insert({Value::Integer(1), Value::Text("a")}).ok());
  ASSERT_TRUE(table.Insert({Value::Integer(2), Value::Text("b")}).ok());
  EXPECT_EQ(table.RowCount(), 2u);

  // Duplicate PK rejected.
  auto dup = table.Insert({Value::Integer(1), Value::Text("c")});
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(table.RowCount(), 2u);

  // Delete frees the key for reuse.
  table.Delete(0);
  EXPECT_EQ(table.RowCount(), 1u);
  EXPECT_FALSE(table.IsLive(0));
  EXPECT_TRUE(table.Insert({Value::Integer(1), Value::Text("again")}).ok());
  EXPECT_EQ(table.RowCount(), 2u);
}

TEST(TableTest, NullKeysAreNotIndexed) {
  TableSchema schema("t", {ColumnDef{"k", ColumnType::kInteger, true}});
  Table table(std::move(schema));
  ASSERT_TRUE(table.CreateIndex("uk", {"k"}, /*unique=*/true).ok());
  // Two NULL keys do not collide (NULL != NULL).
  EXPECT_TRUE(table.Insert({Value::Null()}).ok());
  EXPECT_TRUE(table.Insert({Value::Null()}).ok());
  EXPECT_TRUE(table.Insert({Value::Integer(1)}).ok());
  EXPECT_FALSE(table.Insert({Value::Integer(1)}).ok());
}

TEST(TableTest, FindIndexCoveringPrefersWidest) {
  TableSchema schema("t", {ColumnDef{"a", ColumnType::kInteger, false},
                           ColumnDef{"b", ColumnType::kInteger, false},
                           ColumnDef{"c", ColumnType::kInteger, false}});
  Table table(std::move(schema));
  ASSERT_TRUE(table.CreateIndex("ia", {"a"}, false).ok());
  ASSERT_TRUE(table.CreateIndex("iab", {"a", "b"}, false).ok());
  const Index* found = table.FindIndexCovering({0, 1, 2});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->name(), "iab");
  // Only column c available: no usable index.
  EXPECT_EQ(table.FindIndexCovering({2}), nullptr);
  // Only a available: single-column index.
  EXPECT_EQ(table.FindIndexCovering({0})->name(), "ia");
}

TEST(TableTest, CreateIndexValidates) {
  TableSchema schema("t", {ColumnDef{"a", ColumnType::kInteger, false}});
  Table table(std::move(schema));
  EXPECT_EQ(table.CreateIndex("i", {"nope"}, false).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(table.CreateIndex("i", {"a"}, false).ok());
  EXPECT_EQ(table.CreateIndex("i", {"a"}, false).code(),
            StatusCode::kAlreadyExists);
}

TEST(TableTest, CreateUniqueIndexOnExistingDuplicatesFails) {
  TableSchema schema("t", {ColumnDef{"a", ColumnType::kInteger, false}});
  Table table(std::move(schema));
  ASSERT_TRUE(table.Insert({Value::Integer(1)}).ok());
  ASSERT_TRUE(table.Insert({Value::Integer(1)}).ok());
  EXPECT_FALSE(table.CreateIndex("u", {"a"}, /*unique=*/true).ok());
}

TEST(PreparedStatementTest, ReusedAcrossDataChanges) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  auto stmt = db.Prepare("SELECT COUNT(*) FROM t WHERE a >= 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  auto r0 = stmt.value().Execute();
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0.value().rows[0][0].AsInteger(), 0);
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (5), (10), (15)").ok());
  auto r1 = stmt.value().Execute();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().rows[0][0].AsInteger(), 2);
}

TEST(PreparedStatementTest, OnlySelectsPrepare) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  EXPECT_EQ(db.Prepare("INSERT INTO t VALUES (1)").status().code(),
            StatusCode::kUnsupported);
  EXPECT_FALSE(db.Prepare("SELECT * FROM missing").ok());
}

TEST(PreparedStatementTest, StaleAfterDdl) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (a INTEGER);").ok());
  auto stmt = db.Prepare("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE other (b INTEGER)").ok());
  auto result = stmt.value().Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PreparedStatementTest, EmptyStatementFails) {
  PreparedStatement empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.Execute().ok());
}

}  // namespace
}  // namespace p3pdb::sqldb
