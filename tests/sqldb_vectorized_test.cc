// Unit tests for the vectorized batch executor: selection-vector edge
// cases (all-pass, all-fail, NULL-heavy) at chunk-boundary sizes, kernel
// coverage for every operator the chunk evaluator handles, and the
// fallback rules (correlated EXISTS, small scans). Every query runs on a
// vectorized database and a scalar-executor database over identical data
// and must render identical results — the scalar path is the ground truth
// the ablation switch falls back to.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sqldb/database.h"

namespace p3pdb::sqldb {
namespace {

Database::Options VecOptions() {
  Database::Options options;
  options.enable_vectorized_executor = true;
  return options;
}

Database::Options ScalarOptions() {
  Database::Options options;
  options.enable_vectorized_executor = false;
  return options;
}

/// A vec/scalar database pair kept in lockstep.
class VecPair {
 public:
  VecPair() : vec_(VecOptions()), scalar_(ScalarOptions()) {}

  void Script(const std::string& sql) {
    ASSERT_TRUE(vec_.ExecuteScript(sql).ok()) << sql;
    ASSERT_TRUE(scalar_.ExecuteScript(sql).ok()) << sql;
  }

  void Insert(const char* table, Row row) {
    ASSERT_TRUE(vec_.InsertRow(table, row).ok());
    ASSERT_TRUE(scalar_.InsertRow(table, std::move(row)).ok());
  }

  /// Runs `sql` on both and expects identical renderings.
  void ExpectAgree(const std::string& sql) {
    auto v = vec_.Execute(sql);
    auto s = scalar_.Execute(sql);
    ASSERT_TRUE(v.ok()) << v.status() << "\n" << sql;
    ASSERT_TRUE(s.ok()) << s.status() << "\n" << sql;
    EXPECT_EQ(v.value().ToString(), s.value().ToString()) << sql;
  }

  Database& vec() { return vec_; }
  Database& scalar() { return scalar_; }

 private:
  Database vec_;
  Database scalar_;
};

/// Fills `t(a INTEGER, c VARCHAR)` with `n` rows: a = i, c cycles through
/// a few texts with NULLs at the given stride (0 = no NULLs).
void FillTable(VecPair* pair, size_t n, size_t null_stride) {
  static const char* texts[] = {"alpha", "beta", "gamma", "delta"};
  for (size_t i = 0; i < n; ++i) {
    Row row;
    const bool null_a = null_stride != 0 && i % null_stride == 0;
    row.push_back(null_a ? Value::Null()
                         : Value::Integer(static_cast<int64_t>(i)));
    const bool null_c = null_stride != 0 && i % null_stride == 1;
    row.push_back(null_c ? Value::Null() : Value::Text(texts[i % 4]));
    pair->Insert("t", std::move(row));
  }
}

// Chunk-boundary sizes: 1 row (small-scan fallback), 1023/1024/1025 (one
// chunk minus/exactly/plus one row after the adaptive ramp reaches the
// full chunk size).
class ChunkBoundaryTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, ChunkBoundaryTest,
                         ::testing::Values(1, 1023, 1024, 1025));

TEST_P(ChunkBoundaryTest, AllPassAllFailAndSelective) {
  const size_t n = GetParam();
  VecPair pair;
  pair.Script("CREATE TABLE t (a INTEGER, c VARCHAR(8));");
  FillTable(&pair, n, 0);
  // All pass, all fail, ~half pass, and a text predicate.
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a >= 0");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a < 0");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a >= " +
                   std::to_string(n / 2));
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE c = 'beta'");
  // Row-returning shape (order is scan order on both paths).
  pair.ExpectAgree("SELECT a, c FROM t WHERE a IN (0, 3, 511, 1022, 1024) "
                   "OR c = 'delta'");
}

TEST_P(ChunkBoundaryTest, NullHeavyChunks) {
  const size_t n = GetParam();
  VecPair pair;
  pair.Script("CREATE TABLE t (a INTEGER, c VARCHAR(8));");
  FillTable(&pair, n, 2);  // half the rows carry a NULL
  // NULL comparisons are UNKNOWN and must filter out (three-valued logic).
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a >= 0");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE NOT (a < 0)");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a IS NULL");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a IS NOT NULL AND c IS "
                   "NOT NULL");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a > 5 OR c = 'alpha'");
}

TEST(SqldbVectorizedTest, KernelOperatorCoverage) {
  VecPair pair;
  pair.Script("CREATE TABLE t (a INTEGER, c VARCHAR(8));");
  FillTable(&pair, 200, 5);
  // One query per kernel: comparison, logical AND/OR, NOT, IN (with and
  // without NULL in the list), IS [NOT] NULL, LIKE (with ESCAPE).
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a = 7");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a > 10 AND a <= 150");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a < 3 OR a > 190");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE NOT (a > 100)");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a IN (1, 2, 3, 99)");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a IN (1, NULL, 3)");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a NOT IN (1, NULL, 3)");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE c IS NULL");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE c IS NOT NULL");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE c LIKE '%eta'");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE c LIKE 'a!%%' ESCAPE '!'");
}

TEST(SqldbVectorizedTest, HashJoinProbesWithNullKeys) {
  VecPair pair;
  pair.Script(
      "CREATE TABLE t (a INTEGER, c VARCHAR(8));"
      "CREATE TABLE u (k INTEGER, v INTEGER);");
  FillTable(&pair, 120, 4);  // NULL probe keys every 4th row
  for (int i = 0; i < 40; ++i) {
    Row row;
    row.push_back(i % 5 == 0 ? Value::Null() : Value::Integer(i * 3));
    row.push_back(Value::Integer(i % 7));
    pair.Insert("u", std::move(row));
  }
  // Rewritable EXISTS / NOT EXISTS become hash semi/anti-joins; NULL keys
  // on either side must produce the SQL verdicts (never match; NOT EXISTS
  // over a NULL probe key is TRUE because no row can equal NULL).
  pair.ExpectAgree(
      "SELECT COUNT(*) FROM t WHERE EXISTS (SELECT * FROM u WHERE u.k = a)");
  pair.ExpectAgree(
      "SELECT COUNT(*) FROM t WHERE NOT EXISTS "
      "(SELECT * FROM u WHERE u.k = a)");
  pair.ExpectAgree(
      "SELECT COUNT(*) FROM t WHERE EXISTS "
      "(SELECT * FROM u WHERE u.k = a AND u.v >= 2)");
}

TEST(SqldbVectorizedTest, CorrelatedExistsFallsBackPerRow) {
  VecPair pair;
  pair.Script(
      "CREATE TABLE t (a INTEGER, c VARCHAR(8));"
      "CREATE TABLE u (k INTEGER, v INTEGER);");
  FillTable(&pair, 100, 0);
  for (int i = 0; i < 30; ++i) {
    Row row;
    row.push_back(Value::Integer(i));
    row.push_back(Value::Integer(i % 4));
    pair.Insert("u", std::move(row));
  }
  // Non-equality correlation cannot be decorrelated: the chunk evaluator
  // must route these rows through the scalar fallback and still agree.
  pair.ExpectAgree(
      "SELECT COUNT(*) FROM t WHERE EXISTS "
      "(SELECT * FROM u WHERE u.k < a)");
  pair.ExpectAgree(
      "SELECT COUNT(*) FROM t WHERE a > 10 AND EXISTS "
      "(SELECT * FROM u WHERE u.k < a AND u.v = 1)");
  EXPECT_GT(pair.vec().stats().vectorized_fallback_rows, 0u);
}

TEST(SqldbVectorizedTest, StatsTickOnlyOnTheVectorizedPath) {
  VecPair pair;
  pair.Script("CREATE TABLE t (a INTEGER, c VARCHAR(8));");
  FillTable(&pair, 500, 0);
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a >= 250");
  const ExecStats vec_stats = pair.vec().stats();
  const ExecStats scalar_stats = pair.scalar().stats();
  EXPECT_GT(vec_stats.batches, 0u);
  EXPECT_GT(vec_stats.batch_rows, 0u);
  EXPECT_GT(vec_stats.vectorized_filters, 0u);
  EXPECT_EQ(scalar_stats.batches, 0u);
  EXPECT_EQ(scalar_stats.batch_rows, 0u);
  EXPECT_EQ(scalar_stats.vectorized_filters, 0u);
  // Both executors visited the same rows.
  EXPECT_EQ(vec_stats.rows_scanned, scalar_stats.rows_scanned);
}

TEST(SqldbVectorizedTest, SmallScansSkipTheChunkMachinery) {
  VecPair pair;
  pair.Script("CREATE TABLE t (a INTEGER, c VARCHAR(8));");
  FillTable(&pair, 10, 0);  // under the small-scan cutoff
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE a >= 5");
  EXPECT_EQ(pair.vec().stats().batches, 0u);
}

TEST(SqldbVectorizedTest, DmlAndAggregatesAgree) {
  VecPair pair;
  pair.Script("CREATE TABLE t (a INTEGER, c VARCHAR(8));");
  FillTable(&pair, 300, 3);
  // DML goes through the row predicate entry points in both modes.
  pair.Script("UPDATE t SET c = 'upd' WHERE a IN (10, 20, 30, 40, 250);");
  pair.Script("DELETE FROM t WHERE a > 280;");
  pair.ExpectAgree("SELECT COUNT(*) FROM t WHERE c = 'upd'");
  pair.ExpectAgree("SELECT c, COUNT(*) FROM t WHERE a IS NOT NULL "
                   "GROUP BY c ORDER BY c");
  pair.ExpectAgree("SELECT MIN(a), MAX(a) FROM t WHERE c <> 'upd'");
}

}  // namespace
}  // namespace p3pdb::sqldb
