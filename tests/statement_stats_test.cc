// Statement-telemetry tests: normalization and fingerprinting (literal vs
// bind-parameter submissions must collapse to one fingerprint), the
// per-entry aggregates through real Database executions, plan-cache and
// prepared-statement attribution, slow-query and trace-sample capture, and
// registry reset semantics (pointer stability).

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "obs/slow_log.h"
#include "sqldb/database.h"
#include "sqldb/statement_stats.h"
#include "sqldb/value.h"

namespace p3pdb::sqldb {
namespace {

Database MakeStatsDb(uint64_t slow_threshold_us = 0,
                     uint32_t sample_every = 0) {
  Database::Options options;
  options.enable_statement_stats = true;
  options.slow_query_threshold_us = slow_threshold_us;
  options.trace_sample_every = sample_every;
  options.slow_log_capacity = 8;
  return Database(options);
}

void InstallFixture(Database* db) {
  ASSERT_TRUE(db->ExecuteScript(R"sql(
    CREATE TABLE t (id INTEGER NOT NULL, name VARCHAR(32), PRIMARY KEY (id));
    INSERT INTO t VALUES (1, 'a');
    INSERT INTO t VALUES (2, 'b');
    INSERT INTO t VALUES (3, 'c');
  )sql")
                  .ok());
}

TEST(NormalizeStatementTextTest, LiteralsAndParamsCollapse) {
  const std::string a =
      NormalizeStatementText("SELECT name FROM t WHERE id = 3");
  const std::string b =
      NormalizeStatementText("select  name\nfrom T where ID=?");
  const std::string c =
      NormalizeStatementText("SELECT name FROM t WHERE id = 'x'");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(a, "select name from t where id = ?");
}

TEST(NormalizeStatementTextTest, DotsGlueQualifiedNames) {
  EXPECT_EQ(NormalizeStatementText("SELECT T . Name FROM t"),
            "select t.name from t");
  EXPECT_EQ(NormalizeStatementText("SELECT COUNT ( * ) FROM t"),
            "select count (*) from t");
  EXPECT_EQ(NormalizeStatementText("SELECT COUNT(*) FROM t"),
            "select count (*) from t");
}

TEST(NormalizeStatementTextTest, DifferentShapesStayDistinct) {
  EXPECT_NE(
      FingerprintStatementText(
          NormalizeStatementText("SELECT name FROM t WHERE id = 1")),
      FingerprintStatementText(
          NormalizeStatementText("SELECT id FROM t WHERE name = 'a'")));
}

TEST(NormalizeStatementTextTest, UntokenizableFallsBackToCollapse) {
  // `$` is not in the lexer's alphabet; the fallback still produces a
  // deterministic normalization instead of failing Intern.
  EXPECT_EQ(NormalizeStatementText("  foo   $bar  "), "foo $bar");
}

TEST(StatementStatsTest, LiteralAndParamSubmissionsShareOneEntry) {
  Database db = MakeStatsDb();
  InstallFixture(&db);
  ASSERT_TRUE(db.Execute("SELECT name FROM t WHERE id = 1").ok());
  ASSERT_TRUE(db.Execute("SELECT name FROM t WHERE id = 2").ok());
  ASSERT_TRUE(
      db.Execute("SELECT name FROM t WHERE id = ?", {Value::Integer(3)}).ok());

  std::vector<StatementStatsSnapshot> snaps = db.statement_stats().Snapshot();
  const StatementStatsSnapshot* entry = nullptr;
  for (const auto& s : snaps) {
    if (s.normalized_sql == "select name from t where id = ?") entry = &s;
  }
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->calls, 3u);
  EXPECT_EQ(entry->rows_returned, 3u);
  EXPECT_EQ(entry->errors, 0u);
  EXPECT_GE(entry->max_us, entry->min_us);
  EXPECT_GE(entry->total_us, entry->max_us);
}

TEST(StatementStatsTest, PlanCacheHitsAttributeToTheEntry) {
  Database db = MakeStatsDb();
  InstallFixture(&db);
  const std::string sql = "SELECT name FROM t WHERE id = ?";
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.Execute(sql, {Value::Integer(1)}).ok());
  }
  std::vector<StatementStatsSnapshot> snaps = db.statement_stats().Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].calls, 5u);
  EXPECT_EQ(snaps[0].plans_built, 1u);
  // The first execution parses and plans; the remaining four hit the cache.
  EXPECT_EQ(snaps[0].plan_cache_hits, 4u);
}

TEST(StatementStatsTest, PreparedStatementsTallyIntoTheSameEntry) {
  Database db = MakeStatsDb();
  InstallFixture(&db);
  auto prepared = db.Prepare("SELECT name FROM t WHERE id = ?");
  ASSERT_TRUE(prepared.ok());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(prepared.value().Execute({Value::Integer(i)}).ok());
  }
  // A literal-carrying text execution of the same shape joins the entry.
  ASSERT_TRUE(db.Execute("SELECT name FROM t WHERE id = 2").ok());
  std::vector<StatementStatsSnapshot> snaps = db.statement_stats().Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].calls, 4u);
}

TEST(StatementStatsTest, SnapshotOrdersByTotalTimeAndHonorsTop) {
  Database db = MakeStatsDb();
  InstallFixture(&db);
  // Three shapes with different call counts; total time tracks calls
  // closely enough for ordering not to matter — just check `top` trims.
  ASSERT_TRUE(db.Execute("SELECT name FROM t WHERE id = 1").ok());
  ASSERT_TRUE(db.Execute("SELECT id FROM t").ok());
  ASSERT_TRUE(db.Execute("SELECT COUNT(*) FROM t").ok());
  EXPECT_EQ(db.statement_stats().Snapshot().size(), 3u);
  EXPECT_EQ(db.statement_stats().Snapshot(2).size(), 2u);
  std::vector<StatementStatsSnapshot> all = db.statement_stats().Snapshot();
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].total_us, all[i].total_us);
  }
}

TEST(StatementStatsTest, DisabledByDefaultCostsNothing) {
  Database db;  // default options: stats off
  InstallFixture(&db);
  ASSERT_TRUE(db.Execute("SELECT name FROM t WHERE id = 1").ok());
  EXPECT_EQ(db.statement_stats().size(), 0u);
  EXPECT_EQ(db.slow_log(), nullptr);
}

TEST(StatementStatsTest, SlowThresholdCapturesPlanAndParams) {
  // An indexed 3-row lookup can finish in under a microsecond, so give the
  // threshold something to catch: a sequential scan over a few hundred
  // rows on the non-indexed column.
  Database db = MakeStatsDb(/*slow_query_threshold_us=*/1);
  InstallFixture(&db);
  ASSERT_NE(db.slow_log(), nullptr);
  for (int i = 10; i < 400; ++i) {
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", 'row')")
                    .ok());
  }
  const std::string sql = "SELECT id FROM t WHERE name = ?";
  ASSERT_TRUE(db.Execute(sql, {Value::Text("b")}).ok());
  // Belt and braces against an improbably fast scan: retry a few times.
  for (int i = 0; i < 10 && db.slow_log()->total_captured() == 0; ++i) {
    ASSERT_TRUE(db.Execute(sql, {Value::Text("b")}).ok());
  }
  auto entries =
      db.slow_log()->Entries(obs::SlowQueryEntry::Kind::kSlow);
  ASSERT_FALSE(entries.empty());
  const obs::SlowQueryEntry& e = entries.front();
  EXPECT_EQ(e.sql, "select id from t where name = ?");
  EXPECT_EQ(e.params, "['b']");
  EXPECT_NE(e.plan.find("scan t"), std::string::npos)
      << "expected an access-path line in the captured plan, got: " << e.plan;
  EXPECT_NE(e.plan.find("(actual rows="), std::string::npos)
      << "expected EXPLAIN ANALYZE actuals in the captured plan, got: "
      << e.plan;
  EXPECT_GT(e.elapsed_us, 0.0);
  // JSON rendering carries the plan.
  EXPECT_NE(db.slow_log()->RenderJson().find("\"kind\": \"slow\""),
            std::string::npos);
}

TEST(StatementStatsTest, TraceSamplingCapturesEveryNth) {
  Database db = MakeStatsDb(/*slow_threshold_us=*/0, /*sample_every=*/3);
  InstallFixture(&db);
  ASSERT_NE(db.slow_log(), nullptr);
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(db.Execute("SELECT name FROM t WHERE id = ?",
                           {Value::Integer(1)})
                    .ok());
  }
  auto samples =
      db.slow_log()->Entries(obs::SlowQueryEntry::Kind::kTraceSample);
  EXPECT_EQ(samples.size(), 3u);  // calls 3, 6, 9
  for (const auto& s : samples) {
    EXPECT_EQ(s.kind, obs::SlowQueryEntry::Kind::kTraceSample);
    EXPECT_FALSE(s.plan.empty());
  }
}

TEST(StatementStatsTest, RingOverwritesOldestButKeepsCounting) {
  obs::SlowQueryLog log(3);
  for (int i = 0; i < 5; ++i) {
    obs::SlowQueryEntry e;
    e.sql = "q" + std::to_string(i);
    log.Add(std::move(e));
  }
  EXPECT_EQ(log.total_captured(), 5u);
  auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries.front().sql, "q2");  // oldest surviving
  EXPECT_EQ(entries.back().sql, "q4");
}

TEST(StatementStatsTest, ResetZeroesInPlaceAndKeepsPointersValid) {
  Database db = MakeStatsDb();
  InstallFixture(&db);
  const std::string sql = "SELECT name FROM t WHERE id = ?";
  auto prepared = db.Prepare(sql);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared.value().Execute({Value::Integer(1)}).ok());
  ASSERT_EQ(db.statement_stats().Snapshot()[0].calls, 1u);

  db.mutable_statement_stats().Reset();
  ASSERT_EQ(db.statement_stats().Snapshot()[0].calls, 0u);

  // The prepared statement still points at the (zeroed) entry: executing
  // after Reset must tally, not crash.
  ASSERT_TRUE(prepared.value().Execute({Value::Integer(2)}).ok());
  EXPECT_EQ(db.statement_stats().Snapshot()[0].calls, 1u);
  EXPECT_EQ(db.statement_stats().size(), 1u);
}

TEST(StatementStatsTest, ConcurrentExecutionsLoseNoCalls) {
  Database db = MakeStatsDb();
  InstallFixture(&db);
  auto prepared = db.Prepare("SELECT name FROM t WHERE id = ?");
  ASSERT_TRUE(prepared.ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&prepared] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(prepared.value().Execute({Value::Integer(1)}).ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  std::vector<StatementStatsSnapshot> snaps = db.statement_stats().Snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].calls, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(snaps[0].rows_returned, uint64_t{kThreads} * kPerThread);
}

TEST(StatementStatsTest, RenderJsonAndTextContainTheStatement) {
  Database db = MakeStatsDb();
  InstallFixture(&db);
  ASSERT_TRUE(db.Execute("SELECT name FROM t WHERE id = 1").ok());
  const std::string json = db.statement_stats().RenderJson(10);
  EXPECT_NE(json.find("select name from t where id = ?"), std::string::npos);
  EXPECT_NE(json.find("\"calls\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\": \""), std::string::npos);
  const std::string text = db.statement_stats().RenderText(10);
  EXPECT_NE(text.find("select name from t where id = ?"), std::string::npos);
}

}  // namespace
}  // namespace p3pdb::sqldb
