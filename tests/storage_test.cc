// Unit tests for the disk-backed storage engine's layers: serde encoding,
// WAL framing and torn-tail scanning, buffer-pool replacement (LRU-K, pin
// counts, writeback), the fault-injecting file backend, Database
// close/reopen/checkpoint durability, and PolicyServer catalog recovery.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "server/policy_server.h"
#include "sqldb/buffer_pool.h"
#include "sqldb/database.h"
#include "sqldb/file_backend.h"
#include "sqldb/storage_serde.h"
#include "sqldb/wal.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"

namespace p3pdb::sqldb {
namespace {

using server::EngineKind;
using server::PolicyServer;

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "p3pdb_storage_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ---------------------------------------------------------------- serde --

TEST(StorageSerde, ValueAndRowRoundtrip) {
  ByteWriter writer;
  Row row = {Value::Null(), Value::Integer(-42), Value::Text("héllo\0x"),
             Value::Integer(INT64_MAX), Value::Text("")};
  writer.PutRow(row);

  ByteReader reader(writer.bytes.data(), writer.bytes.size());
  auto decoded = reader.GetRow();
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_TRUE(reader.exhausted());
  ASSERT_EQ(decoded.value().size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(Value::OrderCompare(decoded.value()[i], row[i]), 0) << i;
  }
}

TEST(StorageSerde, SchemaRoundtripKeepsKeysAndConstraints) {
  TableSchema schema(
      "Widgets",
      {ColumnDef{"id", ColumnType::kInteger, /*nullable=*/false},
       ColumnDef{"parent", ColumnType::kInteger, /*nullable=*/true},
       ColumnDef{"label", ColumnType::kText, /*nullable=*/true}});
  schema.set_primary_key({"id"});
  ForeignKeyDef fk;
  fk.columns = {"parent"};
  fk.referenced_table = "Widgets";
  fk.referenced_columns = {"id"};
  schema.AddForeignKey(fk);

  ByteWriter writer;
  writer.PutSchema(schema);
  ByteReader reader(writer.bytes.data(), writer.bytes.size());
  auto decoded = reader.GetSchema();
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value().name(), "Widgets");
  ASSERT_EQ(decoded.value().columns().size(), 3u);
  EXPECT_EQ(decoded.value().columns()[1].name, "parent");
  EXPECT_FALSE(decoded.value().columns()[0].nullable);
  EXPECT_EQ(decoded.value().primary_key(), schema.primary_key());
  ASSERT_EQ(decoded.value().foreign_keys().size(), 1u);
  EXPECT_EQ(decoded.value().foreign_keys()[0].referenced_table, "Widgets");
}

TEST(StorageSerde, TruncatedBufferFailsCleanly) {
  ByteWriter writer;
  writer.PutRow({Value::Text("abcdefgh"), Value::Integer(7)});
  for (size_t cut = 0; cut < writer.bytes.size(); ++cut) {
    ByteReader reader(writer.bytes.data(), cut);
    EXPECT_FALSE(reader.GetRow().ok()) << "cut at " << cut;
  }
}

// ------------------------------------------------------------------ WAL --

WalRecord MakeRecord(uint64_t txn, WalRecordType type, size_t payload_len) {
  WalRecord record;
  record.txn_id = txn;
  record.type = type;
  record.payload.assign(payload_len, static_cast<uint8_t>(txn * 31 + 1));
  return record;
}

TEST(Wal, AppendScanRoundtrip) {
  const std::string dir = TestDir("wal_roundtrip");
  std::filesystem::create_directories(dir);
  auto file = OpenPosixFile(dir + "/wal.log");
  ASSERT_TRUE(file.ok());

  WalWriter writer(file.value().get(), 0);
  std::vector<WalRecord> written;
  written.push_back(MakeRecord(1, WalRecordType::kInsert, 40));
  written.push_back(MakeRecord(1, WalRecordType::kDelete, 12));
  written.push_back(MakeRecord(1, WalRecordType::kCommit, 0));
  written.push_back(MakeRecord(2, WalRecordType::kCreateTable, 200));
  for (const WalRecord& record : written) {
    ASSERT_TRUE(writer.Append(record).ok());
  }
  ASSERT_TRUE(writer.Sync().ok());
  EXPECT_EQ(writer.records_written(), written.size());

  auto scan = ScanWal(file.value().get());
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_FALSE(scan.value().truncated_tail);
  EXPECT_EQ(scan.value().valid_end_offset, writer.offset());
  ASSERT_EQ(scan.value().records.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(scan.value().records[i].txn_id, written[i].txn_id);
    EXPECT_EQ(scan.value().records[i].type, written[i].type);
    EXPECT_EQ(scan.value().records[i].payload, written[i].payload);
  }
}

TEST(Wal, TornTailIsCutAndOverwritten) {
  const std::string dir = TestDir("wal_torn");
  std::filesystem::create_directories(dir);
  auto file = OpenPosixFile(dir + "/wal.log");
  ASSERT_TRUE(file.ok());

  WalWriter writer(file.value().get(), 0);
  ASSERT_TRUE(writer.Append(MakeRecord(1, WalRecordType::kInsert, 64)).ok());
  ASSERT_TRUE(writer.Append(MakeRecord(1, WalRecordType::kCommit, 0)).ok());
  const uint64_t good_end = writer.offset();
  // A torn append: only half of the next record's bytes reached the file.
  WalRecord torn = MakeRecord(2, WalRecordType::kInsert, 100);
  ASSERT_TRUE(writer.Append(torn).ok());
  ASSERT_TRUE(file.value()->Truncate(good_end + 20).ok());

  auto scan = ScanWal(file.value().get());
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan.value().truncated_tail);
  EXPECT_EQ(scan.value().valid_end_offset, good_end);
  ASSERT_EQ(scan.value().records.size(), 2u);

  // A recovered writer resumes at the cut point; the re-appended record
  // replaces the torn bytes and the log scans clean again.
  WalWriter resumed(file.value().get(), scan.value().valid_end_offset);
  ASSERT_TRUE(resumed.Append(torn).ok());
  ASSERT_TRUE(
      resumed.Append(MakeRecord(2, WalRecordType::kCommit, 0)).ok());
  auto rescan = ScanWal(file.value().get());
  ASSERT_TRUE(rescan.ok());
  EXPECT_FALSE(rescan.value().truncated_tail);
  ASSERT_EQ(rescan.value().records.size(), 4u);
  EXPECT_EQ(rescan.value().records[2].payload, torn.payload);
}

TEST(Wal, CorruptChecksumStopsScan) {
  const std::string dir = TestDir("wal_corrupt");
  std::filesystem::create_directories(dir);
  auto file = OpenPosixFile(dir + "/wal.log");
  ASSERT_TRUE(file.ok());
  WalWriter writer(file.value().get(), 0);
  ASSERT_TRUE(writer.Append(MakeRecord(1, WalRecordType::kCommit, 0)).ok());
  const uint64_t second_start = writer.offset();
  ASSERT_TRUE(writer.Append(MakeRecord(2, WalRecordType::kInsert, 32)).ok());
  // Flip one payload byte of the second record.
  uint8_t byte = 0;
  size_t n = 0;
  ASSERT_TRUE(
      file.value()->ReadAt(second_start + 25, &byte, 1, &n).ok());
  byte ^= 0xFF;
  ASSERT_TRUE(file.value()->WriteAt(second_start + 25, &byte, 1).ok());

  auto scan = ScanWal(file.value().get());
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.value().truncated_tail);
  EXPECT_EQ(scan.value().valid_end_offset, second_start);
  ASSERT_EQ(scan.value().records.size(), 1u);
}

// ---------------------------------------------------------- buffer pool --

TEST(BufferPoolTest, HitsMissesAndWriteback) {
  const std::string dir = TestDir("pool_basic");
  std::filesystem::create_directories(dir);
  auto file = OpenPosixFile(dir + "/data.db");
  ASSERT_TRUE(file.ok());

  BufferPool pool(file.value().get(), /*frame_count=*/4);
  auto page = pool.FetchPage(3);
  ASSERT_TRUE(page.ok());
  std::memcpy(page.value(), "paged bytes", 11);
  pool.UnpinPage(3, /*dirty=*/true);
  EXPECT_EQ(pool.stats().misses, 1u);

  // Same page again: a hit, served from the frame.
  auto again = pool.FetchPage(3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(std::memcmp(again.value(), "paged bytes", 11), 0);
  pool.UnpinPage(3, false);
  EXPECT_EQ(pool.stats().hits, 1u);

  // FlushAll persists the dirty frame; a direct file read sees the bytes at
  // the page's offset.
  ASSERT_TRUE(pool.FlushAll().ok());
  char buf[12] = {0};
  size_t n = 0;
  ASSERT_TRUE(
      file.value()->ReadAt(3 * kPageSize, buf, 11, &n).ok());
  ASSERT_EQ(n, 11u);
  EXPECT_EQ(std::memcmp(buf, "paged bytes", 11), 0);
  EXPECT_GE(pool.stats().writebacks, 1u);
}

TEST(BufferPoolTest, PinnedFramesAreNeverEvicted) {
  const std::string dir = TestDir("pool_pins");
  std::filesystem::create_directories(dir);
  auto file = OpenPosixFile(dir + "/data.db");
  ASSERT_TRUE(file.ok());

  BufferPool pool(file.value().get(), /*frame_count=*/2);
  auto a = pool.FetchPage(0);
  auto b = pool.FetchPage(1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Every frame pinned: a third fetch must fail rather than evict.
  EXPECT_FALSE(pool.FetchPage(2).ok());
  pool.UnpinPage(1, false);
  auto c = pool.FetchPage(2);
  EXPECT_TRUE(c.ok());
  EXPECT_EQ(pool.stats().evictions, 1u);
  pool.UnpinPage(0, false);
  pool.UnpinPage(2, false);
}

TEST(BufferPoolTest, LruKPrefersSingleUsePagesAsVictims) {
  const std::string dir = TestDir("pool_lruk");
  std::filesystem::create_directories(dir);
  auto file = OpenPosixFile(dir + "/data.db");
  ASSERT_TRUE(file.ok());

  BufferPool pool(file.value().get(), /*frame_count=*/3, /*k=*/2);
  auto touch = [&](PageId id) {
    auto page = pool.FetchPage(id);
    ASSERT_TRUE(page.ok());
    pool.UnpinPage(id, false);
  };
  // Page 0 is hot (two accesses -> finite k-distance); 1 and 2 are
  // scan-like single-access pages.
  touch(0);
  touch(0);
  touch(1);
  touch(2);
  // A new page must evict one of the single-use pages, not the hot one,
  // even though page 0's first access is the oldest (plain LRU would evict
  // it).
  touch(3);
  auto hot = pool.FetchPage(0);
  ASSERT_TRUE(hot.ok());
  pool.UnpinPage(0, false);
  const auto& stats = pool.stats();
  // Refetching page 0 was a hit: it was still resident.
  EXPECT_EQ(stats.hits, 2u);  // second touch(0) + the refetch
}

// -------------------------------------------------------- fault backend --

TEST(FaultBackend, CrashesAtTheConfiguredOpWithPartialWrite) {
  const std::string dir = TestDir("fault");
  std::filesystem::create_directories(dir);

  auto plan = std::make_shared<FaultPlan>();
  plan->crash_at_op = 3;
  plan->partial_fraction = 0.5;
  bool crashed = false;
  plan->on_crash = [&crashed] { crashed = true; };
  FileBackendFactory factory = MakeFaultInjectingFactory(plan);

  auto file = factory(dir + "/f.bin");
  ASSERT_TRUE(file.ok());
  const char bytes[8] = {'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'};
  ASSERT_TRUE(file.value()->WriteAt(0, bytes, 8).ok());
  ASSERT_TRUE(file.value()->WriteAt(8, bytes, 8).ok());
  EXPECT_FALSE(crashed);
  // Third write dies halfway: 4 of 8 bytes land, then the crash hook runs
  // and the write reports failure.
  Status st = file.value()->WriteAt(16, bytes, 8);
  EXPECT_TRUE(crashed);
  EXPECT_FALSE(st.ok());
  auto size = file.value()->Size();
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 20u);
}

// ------------------------------------------------- database durability --

TEST(DatabaseStorage, UncommittedExplicitTransactionIsDroppedOnReopen) {
  const std::string dir = TestDir("db_uncommitted");
  {
    Database db(Database::Options{.storage_path = dir});
    ASSERT_TRUE(db.storage_status().ok());
    ASSERT_TRUE(
        db.ExecuteScript("CREATE TABLE t (k INTEGER, PRIMARY KEY (k));")
            .ok());
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
    // Open a transaction, write, and close WITHOUT committing. The
    // destructor's checkpoint must refuse to run (it would make the
    // uncommitted row durable), and recovery must drop the txn.
    ASSERT_TRUE(db.BeginTransaction().ok());
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (2)").ok());
  }
  {
    Database db(Database::Options{.storage_path = dir});
    ASSERT_TRUE(db.storage_status().ok()) << db.storage_status();
    auto rows = db.Execute("SELECT k FROM t ORDER BY k");
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows.value().rows.size(), 1u);
    EXPECT_EQ(rows.value().rows[0][0].AsInteger(), 1);
  }
}

TEST(DatabaseStorage, CheckpointTruncatesWalAndSurvivesReopen) {
  const std::string dir = TestDir("db_checkpoint");
  {
    Database db(Database::Options{.storage_path = dir});
    ASSERT_TRUE(db.storage_status().ok());
    ASSERT_TRUE(db.ExecuteScript("CREATE TABLE t (k INTEGER, v VARCHAR(8));")
                    .ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                             ", 'v" + std::to_string(i % 7) + "')")
                      .ok());
    }
    ASSERT_TRUE(db.Execute("DELETE FROM t WHERE k >= 40").ok());
    ASSERT_TRUE(db.Checkpoint().ok());
    EXPECT_EQ(db.storage_stats().checkpoints, 1u);
    // Post-checkpoint writes land in the fresh WAL.
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (100, 'after')").ok());
  }
  {
    Database db(Database::Options{.storage_path = dir,
                                  .storage_checkpoint_on_close = false});
    ASSERT_TRUE(db.storage_status().ok()) << db.storage_status();
    auto count = db.Execute("SELECT COUNT(*) FROM t");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count.value().rows[0][0].AsInteger(), 41);
    auto after = db.Execute("SELECT v FROM t WHERE k = 100");
    ASSERT_TRUE(after.ok());
    ASSERT_EQ(after.value().rows.size(), 1u);
    EXPECT_EQ(after.value().rows[0][0].AsText(), "after");
    // Tombstones survived the checkpoint: re-inserting a deleted key works
    // and row ids keep advancing (no drift).
    ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (40, 'again')").ok());
  }
  // Third generation: the previous (non-checkpointing) close left the
  // insert only in the WAL; replay must still apply it.
  {
    Database db(Database::Options{.storage_path = dir});
    ASSERT_TRUE(db.storage_status().ok()) << db.storage_status();
    auto again = db.Execute("SELECT COUNT(*) FROM t WHERE k = 40");
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().rows[0][0].AsInteger(), 1);
    EXPECT_GT(db.storage_stats().recovered_records, 0u);
  }
}

TEST(DatabaseStorage, InMemoryDatabaseHasZeroStorageFootprint) {
  Database db;
  EXPECT_TRUE(db.storage_status().ok());
  EXPECT_FALSE(db.storage_active());
  EXPECT_EQ(db.storage_stats().wal_records, 0u);
  EXPECT_TRUE(db.BeginTransaction().ok());   // no-ops, not errors
  EXPECT_TRUE(db.CommitTransaction().ok());
  EXPECT_TRUE(db.Checkpoint().ok());
}

TEST(DatabaseStorage, SecondaryIndexesAreRebuiltConsistently) {
  const std::string dir = TestDir("db_indexes");
  {
    Database db(Database::Options{.storage_path = dir});
    ASSERT_TRUE(db.storage_status().ok());
    ASSERT_TRUE(db.ExecuteScript(
                      "CREATE TABLE t (k INTEGER, g INTEGER, "
                      "PRIMARY KEY (k));"
                      "CREATE INDEX idx_t_g ON t (g);")
                    .ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                             ", " + std::to_string(i % 4) + ")")
                      .ok());
    }
  }
  {
    Database db(Database::Options{.storage_path = dir});
    ASSERT_TRUE(db.storage_status().ok()) << db.storage_status();
    // The PK index must reject duplicates on recovered data.
    EXPECT_FALSE(db.Execute("INSERT INTO t VALUES (5, 0)").ok());
    // The secondary index answers point queries over recovered rows.
    auto grouped = db.Execute("SELECT COUNT(*) FROM t WHERE g = 2");
    ASSERT_TRUE(grouped.ok());
    EXPECT_EQ(grouped.value().rows[0][0].AsInteger(), 5);
    const Table* table = db.LookupTable("t");
    ASSERT_NE(table, nullptr);
    ASSERT_EQ(table->indexes().size(), 2u);  // pk + idx_t_g
  }
}

// --------------------------------------------------- server recovery ----

TEST(ServerStorage, CatalogAndMatchingSurviveReopen) {
  const std::string dir = TestDir("server_reopen");
  PolicyServer::Options options;
  options.engine = EngineKind::kSql;
  options.storage_path = dir;

  std::string behavior_before;
  int64_t volga_id = -1;
  {
    auto server = PolicyServer::Create(options);
    ASSERT_TRUE(server.ok()) << server.status();
    ASSERT_TRUE(
        server.value()->InstallPolicy(workload::VolgaPolicy()).ok());
    // Re-install to create version 2 (exercises versioning recovery).
    p3p::Policy v2 = workload::VolgaPolicy();
    v2.statements[0].recipients.push_back(
        p3p::RecipientItem{"unrelated", p3p::Required::kAlways});
    auto id2 = server.value()->InstallPolicy(v2);
    ASSERT_TRUE(id2.ok());
    volga_id = id2.value();
    ASSERT_TRUE(server.value()
                    ->InstallReferenceFile(workload::VolgaReferenceFile())
                    .ok());

    auto pref =
        server.value()->CompilePreference(workload::JanePreference());
    ASSERT_TRUE(pref.ok());
    auto match = server.value()->MatchUri(pref.value(), "/catalog");
    ASSERT_TRUE(match.ok());
    behavior_before = match.value().behavior;
    EXPECT_EQ(server.value()->PolicyVersion("volga"), 2);
  }

  {
    auto server = PolicyServer::Create(options);
    ASSERT_TRUE(server.ok()) << server.status();
    // Catalog state recovered: ids, versions, reference resolution.
    EXPECT_EQ(server.value()->policy_ids().size(), 2u);
    EXPECT_EQ(server.value()->PolicyVersion("volga"), 2);
    auto resolved = server.value()->FindPolicyIdByAbout("#volga");
    ASSERT_TRUE(resolved.has_value());
    EXPECT_EQ(*resolved, volga_id);

    // Matching over recovered shredded tables gives identical results.
    auto pref =
        server.value()->CompilePreference(workload::JanePreference());
    ASSERT_TRUE(pref.ok());
    auto match = server.value()->MatchUri(pref.value(), "/catalog");
    ASSERT_TRUE(match.ok()) << match.status();
    EXPECT_EQ(match.value().behavior, behavior_before);
    EXPECT_EQ(match.value().policy_id, volga_id);

    // A fresh install on the recovered server must not collide with
    // recovered ids (shredder sequences resumed past them).
    p3p::Policy extra = workload::VolgaPolicy();
    extra.name = "extra";
    auto extra_id = server.value()->InstallPolicy(extra);
    ASSERT_TRUE(extra_id.ok()) << extra_id.status();
    EXPECT_GT(extra_id.value(), volga_id);

    // Storage metrics are exposed for disk-backed servers.
    const std::string metrics = server.value()->RenderMetricsText();
    EXPECT_NE(metrics.find("p3p_storage_wal_records_total"),
              std::string::npos);
    EXPECT_NE(metrics.find("p3p_storage_recovered_txns_total"),
              std::string::npos);
  }

  // In-memory servers expose exactly the metric set they always did.
  auto memory_server = PolicyServer::Create({});
  ASSERT_TRUE(memory_server.ok());
  EXPECT_EQ(memory_server.value()->RenderMetricsText().find("p3p_storage_"),
            std::string::npos);
}

TEST(ServerStorage, ReopenUnderDifferentEngineIsRejected) {
  const std::string dir = TestDir("server_engine_mismatch");
  PolicyServer::Options sql;
  sql.engine = EngineKind::kSql;
  sql.storage_path = dir;
  {
    auto server = PolicyServer::Create(sql);
    ASSERT_TRUE(server.ok()) << server.status();
    ASSERT_TRUE(
        server.value()->InstallPolicy(workload::VolgaPolicy()).ok());
  }
  PolicyServer::Options simple = sql;
  simple.engine = EngineKind::kSqlSimple;
  auto mismatched = PolicyServer::Create(simple);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServerStorage, MatchLogAndConflictReportSurviveReopen) {
  const std::string dir = TestDir("server_matchlog");
  PolicyServer::Options options;
  options.engine = EngineKind::kSql;
  options.record_matches = true;
  options.storage_path = dir;
  {
    auto server = PolicyServer::Create(options);
    ASSERT_TRUE(server.ok()) << server.status();
    ASSERT_TRUE(
        server.value()->InstallPolicy(workload::VolgaPolicy()).ok());
    ASSERT_TRUE(server.value()
                    ->InstallReferenceFile(workload::VolgaReferenceFile())
                    .ok());
    auto pref =
        server.value()->CompilePreference(workload::JanePreference());
    ASSERT_TRUE(pref.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(server.value()->MatchUri(pref.value(), "/catalog").ok());
    }
  }
  {
    auto server = PolicyServer::Create(options);
    ASSERT_TRUE(server.ok()) << server.status();
    auto report = server.value()->ConflictReport();
    ASSERT_TRUE(report.ok());
    int64_t total = 0;
    for (const Row& row : report.value().rows) {
      total += row[2].AsInteger();
    }
    EXPECT_EQ(total, 3);
    // New matches extend, not collide with, the recovered log.
    auto pref =
        server.value()->CompilePreference(workload::JanePreference());
    ASSERT_TRUE(pref.ok());
    ASSERT_TRUE(server.value()->MatchUri(pref.value(), "/catalog").ok());
    auto after = server.value()->ConflictReport();
    ASSERT_TRUE(after.ok());
    total = 0;
    for (const Row& row : after.value().rows) {
      total += row[2].AsInteger();
    }
    EXPECT_EQ(total, 4);
  }
}

}  // namespace
}  // namespace p3pdb::sqldb
