// Tests for the APPEL -> SQL translators (Figures 11 and 15) and the
// applicablePolicy() query: generated query shape, execution against
// shredded policies, connective semantics, and agreement with the native
// engine on targeted cases.

#include <gtest/gtest.h>

#include "appel/engine.h"
#include "p3p/augment.h"
#include "p3p/policy_xml.h"
#include "shredder/optimized_schema.h"
#include "shredder/reference_schema.h"
#include "shredder/simple_schema.h"
#include "sqldb/database.h"
#include "translator/applicable_policy.h"
#include "translator/sql_optimized.h"
#include "translator/sql_simple.h"
#include "workload/paper_examples.h"

namespace p3pdb::translator {
namespace {

using appel::AppelExpr;
using appel::AppelRule;
using appel::Connective;
using sqldb::Database;
using workload::JaneSimplifiedFirstRule;
using workload::VolgaPolicy;

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(CombineConditionsTest, AllConnectives) {
  std::vector<std::string> terms = {"A", "B"};
  EXPECT_EQ(CombineConditions(terms, Connective::kAnd).value(), "A AND B");
  EXPECT_EQ(CombineConditions(terms, Connective::kOr).value(), "A OR B");
  EXPECT_EQ(CombineConditions(terms, Connective::kNonAnd).value(),
            "NOT (A AND B)");
  EXPECT_EQ(CombineConditions(terms, Connective::kNonOr).value(),
            "NOT (A OR B)");
  EXPECT_FALSE(CombineConditions(terms, Connective::kAndExact).ok());
  EXPECT_FALSE(CombineConditions(terms, Connective::kOrExact).ok());
}

// ---- Figure 13: simple-schema translation shape ---------------------------

TEST(SimpleTranslatorTest, JaneSimplifiedMatchesFigure13Shape) {
  SimpleSqlTranslator translator;
  auto sql = translator.TranslateRule(JaneSimplifiedFirstRule());
  ASSERT_TRUE(sql.ok()) << sql.status();
  const std::string& q = sql.value();
  EXPECT_TRUE(Contains(q, "SELECT 'block' FROM ApplicablePolicy"));
  EXPECT_TRUE(Contains(q, "SELECT * FROM Policy"));
  EXPECT_TRUE(
      Contains(q, "Policy.policy_id = ApplicablePolicy.policy_id"));
  EXPECT_TRUE(Contains(q, "SELECT * FROM Statement"));
  EXPECT_TRUE(Contains(q, "Statement.policy_id = Policy.policy_id"));
  EXPECT_TRUE(Contains(q, "SELECT * FROM Purpose"));
  // One subquery per vocabulary element — Admin and Contact tables, as in
  // Figure 13 (not merged).
  EXPECT_TRUE(Contains(q, "SELECT * FROM Admin"));
  EXPECT_TRUE(Contains(q, "SELECT * FROM Contact"));
  EXPECT_TRUE(Contains(q, "Contact.required = 'always'"));
  EXPECT_TRUE(Contains(q, " OR "));
}

TEST(SimpleTranslatorTest, CatchAllRule) {
  SimpleSqlTranslator translator;
  AppelRule rule;
  rule.behavior = "request";
  auto sql = translator.TranslateRule(rule);
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(sql.value(), "SELECT 'request' FROM ApplicablePolicy");
}

TEST(SimpleTranslatorTest, ExactConnectivesUnsupported) {
  AppelRule rule = JaneSimplifiedFirstRule();
  rule.expressions[0].children[0].children[0].connective =
      Connective::kAndExact;
  SimpleSqlTranslator translator;
  auto sql = translator.TranslateRule(rule);
  ASSERT_FALSE(sql.ok());
  EXPECT_EQ(sql.status().code(), StatusCode::kUnsupported);
}

TEST(SimpleTranslatorTest, UnknownElementUnsupported) {
  AppelRule rule = JaneSimplifiedFirstRule();
  rule.expressions[0].children[0].children[0].name = "NO-SUCH-ELEMENT";
  SimpleSqlTranslator translator;
  EXPECT_FALSE(translator.TranslateRule(rule).ok());
}

// ---- Figure 15: optimized-schema translation shape ------------------------

TEST(OptimizedTranslatorTest, JaneSimplifiedMatchesFigure15Shape) {
  OptimizedSqlTranslator translator;
  auto sql = translator.TranslateRule(JaneSimplifiedFirstRule());
  ASSERT_TRUE(sql.ok()) << sql.status();
  const std::string& q = sql.value();
  EXPECT_TRUE(Contains(q, "SELECT 'block' FROM ApplicablePolicy"));
  // The vocabulary subqueries merge into one Purpose subquery with value
  // predicates (Figure 15).
  EXPECT_TRUE(Contains(q, "Purpose.purpose = 'admin'"));
  EXPECT_TRUE(Contains(q, "Purpose.purpose = 'contact'"));
  EXPECT_TRUE(Contains(q, "Purpose.required = 'always'"));
  EXPECT_FALSE(Contains(q, "FROM Admin"));
  EXPECT_FALSE(Contains(q, "FROM Contact"));
  // Exactly one FROM Purpose (merged), vs two in the Figure 13 form.
  size_t first = q.find("FROM Purpose");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(q.find("FROM Purpose", first + 1), std::string::npos);
}

// ---- Execution fixtures ----------------------------------------------------

class OptimizedExecutionTest : public ::testing::Test {
 protected:
  void Install(const p3p::Policy& policy) {
    ASSERT_TRUE(shredder::InstallOptimizedSchema(&db_).ok());
    ASSERT_TRUE(db_.ExecuteScript(ApplicablePolicyDdl()).ok());
    shredder::OptimizedShredder shredder(&db_);
    p3p::Policy augmented = p3p::Canonicalized(policy);
    p3p::AugmentPolicy(&augmented);
    auto id = shredder.ShredPolicy(augmented);
    ASSERT_TRUE(id.ok()) << id.status();
    ASSERT_TRUE(
        db_.InsertRow("ApplicablePolicy",
                      {sqldb::Value::Integer(id.value())})
            .ok());
  }

  /// Runs one translated rule; returns whether it fired.
  bool RuleFires(const AppelRule& rule) {
    OptimizedSqlTranslator translator;
    auto sql = translator.TranslateRule(rule);
    EXPECT_TRUE(sql.ok()) << sql.status();
    if (!sql.ok()) return false;
    auto result = db_.Execute(sql.value());
    EXPECT_TRUE(result.ok()) << result.status() << "\nSQL: " << sql.value();
    return result.ok() && !result.value().rows.empty();
  }

  /// The native engine's verdict on the same rule, for agreement checks.
  bool NativeFires(const AppelRule& rule, const p3p::Policy& policy) {
    appel::AppelRuleset rs;
    rs.rules.push_back(CloneRule(rule));
    appel::NativeEngine engine;
    std::unique_ptr<xml::Element> dom =
        p3p::PolicyToXml(p3p::Canonicalized(policy));
    auto outcome = engine.Evaluate(rs, *dom);
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    return outcome.ok() && outcome.value().fired();
  }

  static AppelExpr CloneExpr(const AppelExpr& e) {
    AppelExpr copy;
    copy.name = e.name;
    copy.connective = e.connective;
    copy.attributes = e.attributes;
    for (const AppelExpr& c : e.children) copy.children.push_back(CloneExpr(c));
    return copy;
  }
  static AppelRule CloneRule(const AppelRule& r) {
    AppelRule copy;
    copy.behavior = r.behavior;
    copy.connective = r.connective;
    for (const AppelExpr& e : r.expressions) {
      copy.expressions.push_back(CloneExpr(e));
    }
    return copy;
  }

  static AppelRule PurposeRule(Connective c,
                               std::vector<std::string> values) {
    AppelExpr purpose;
    purpose.name = "PURPOSE";
    purpose.connective = c;
    for (std::string& v : values) {
      AppelExpr value;
      value.name = std::move(v);
      purpose.children.push_back(std::move(value));
    }
    AppelExpr statement;
    statement.name = "STATEMENT";
    statement.children.push_back(std::move(purpose));
    AppelExpr policy;
    policy.name = "POLICY";
    policy.children.push_back(std::move(statement));
    AppelRule rule;
    rule.behavior = "block";
    rule.expressions.push_back(std::move(policy));
    return rule;
  }

  Database db_;
};

TEST_F(OptimizedExecutionTest, JaneSimplifiedDoesNotFireOnVolga) {
  Install(VolgaPolicy());
  // Volga has neither admin nor contact-with-always.
  EXPECT_FALSE(RuleFires(JaneSimplifiedFirstRule()));
}

TEST_F(OptimizedExecutionTest, FiresWhenContactBecomesMandatory) {
  p3p::Policy policy = VolgaPolicy();
  policy.statements[1].purposes[1].required = p3p::Required::kAlways;
  Install(policy);
  EXPECT_TRUE(RuleFires(JaneSimplifiedFirstRule()));
}

TEST_F(OptimizedExecutionTest, ConnectivesAgreeWithNativeEngine) {
  // Volga statement 1 has purposes {current}; statement 2 has
  // {individual-decision, contact}. Probe many connective/value
  // combinations and require SQL == native on every one.
  p3p::Policy volga = VolgaPolicy();
  Install(volga);
  const std::vector<std::vector<std::string>> value_sets = {
      {"current"},
      {"contact"},
      {"admin"},
      {"current", "contact"},
      {"individual-decision", "contact"},
      {"admin", "develop"},
      {"current", "admin"},
      {"current", "individual-decision", "contact"},
  };
  const Connective connectives[] = {
      Connective::kAnd,      Connective::kOr,     Connective::kNonAnd,
      Connective::kNonOr,    Connective::kAndExact, Connective::kOrExact,
  };
  for (const auto& values : value_sets) {
    for (Connective c : connectives) {
      AppelRule rule = PurposeRule(c, values);
      bool sql_fired = RuleFires(rule);
      bool native_fired = NativeFires(rule, volga);
      EXPECT_EQ(sql_fired, native_fired)
          << "connective " << appel::ConnectiveToString(c) << " over "
          << values.size() << " values starting with " << values[0];
    }
  }
}

TEST_F(OptimizedExecutionTest, AndExactSemantics) {
  // Statement 2 of Volga has exactly {individual-decision, contact}.
  Install(VolgaPolicy());
  EXPECT_TRUE(RuleFires(PurposeRule(Connective::kAndExact,
                                    {"individual-decision", "contact"})));
  EXPECT_FALSE(RuleFires(PurposeRule(Connective::kAndExact,
                                     {"individual-decision"})));
  EXPECT_TRUE(RuleFires(PurposeRule(Connective::kOrExact, {"current"})));
  EXPECT_FALSE(RuleFires(PurposeRule(Connective::kOrExact, {"admin"})));
}

TEST_F(OptimizedExecutionTest, RetentionAndAccessPredicates) {
  Install(VolgaPolicy());
  // RETENTION folds into Statement.retention.
  AppelExpr retention;
  retention.name = "RETENTION";
  retention.connective = Connective::kOr;
  AppelExpr value;
  value.name = "business-practices";
  retention.children.push_back(std::move(value));
  AppelExpr statement;
  statement.name = "STATEMENT";
  statement.children.push_back(std::move(retention));
  AppelExpr policy;
  policy.name = "POLICY";
  policy.children.push_back(std::move(statement));
  AppelRule rule;
  rule.behavior = "block";
  rule.expressions.push_back(std::move(policy));
  EXPECT_TRUE(RuleFires(rule));

  // ACCESS folds into Policy.access (Volga: contact-and-other).
  AppelExpr access;
  access.name = "ACCESS";
  access.connective = Connective::kOr;
  AppelExpr none;
  none.name = "none";
  access.children.push_back(std::move(none));
  AppelExpr policy2;
  policy2.name = "POLICY";
  policy2.children.push_back(std::move(access));
  AppelRule rule2;
  rule2.behavior = "block";
  rule2.expressions.push_back(std::move(policy2));
  EXPECT_FALSE(RuleFires(rule2));
}

TEST_F(OptimizedExecutionTest, CategoryPredicatesAfterAugmentation) {
  Install(VolgaPolicy());
  // user.name was augmented to physical+demographic at install.
  AppelExpr categories;
  categories.name = "CATEGORIES";
  categories.connective = Connective::kOr;
  AppelExpr physical;
  physical.name = "physical";
  categories.children.push_back(std::move(physical));
  AppelExpr data;
  data.name = "DATA";
  data.children.push_back(std::move(categories));
  AppelExpr group;
  group.name = "DATA-GROUP";
  group.children.push_back(std::move(data));
  AppelExpr statement;
  statement.name = "STATEMENT";
  statement.children.push_back(std::move(group));
  AppelExpr policy;
  policy.name = "POLICY";
  policy.children.push_back(std::move(statement));
  AppelRule rule;
  rule.behavior = "block";
  rule.expressions.push_back(std::move(policy));
  EXPECT_TRUE(RuleFires(rule));
}

TEST_F(OptimizedExecutionTest, DataRefPredicate) {
  Install(VolgaPolicy());
  AppelExpr data;
  data.name = "DATA";
  data.attributes.push_back(
      appel::AppelAttribute{"ref", "#user.home-info.online.email"});
  AppelExpr group;
  group.name = "DATA-GROUP";
  group.children.push_back(std::move(data));
  AppelExpr statement;
  statement.name = "STATEMENT";
  statement.children.push_back(std::move(group));
  AppelExpr policy;
  policy.name = "POLICY";
  policy.children.push_back(std::move(statement));
  AppelRule rule;
  rule.behavior = "block";
  rule.expressions.push_back(std::move(policy));
  EXPECT_TRUE(RuleFires(rule));

  // A ref Volga never collects.
  AppelRule rule2 = CloneRule(rule);
  rule2.expressions[0].children[0].children[0].children[0].attributes[0]
      .value = "#user.login.password";
  EXPECT_FALSE(RuleFires(rule2));
}

// ---- Simple-schema execution ----------------------------------------------

class SimpleExecutionTest : public ::testing::Test {
 protected:
  void Install(const p3p::Policy& policy) {
    ASSERT_TRUE(shredder::InstallSimpleSchema(&db_).ok());
    ASSERT_TRUE(db_.ExecuteScript(ApplicablePolicyDdl()).ok());
    shredder::SimpleShredder shredder(&db_);
    p3p::Policy prepared = p3p::Canonicalized(policy);
    p3p::AugmentPolicy(&prepared);
    std::unique_ptr<xml::Element> dom = p3p::PolicyToXml(prepared);
    auto id = shredder.ShredPolicy(*dom);
    ASSERT_TRUE(id.ok()) << id.status();
    ASSERT_TRUE(db_
                    .InsertRow("ApplicablePolicy",
                               {sqldb::Value::Integer(id.value())})
                    .ok());
  }

  bool RuleFires(const AppelRule& rule) {
    SimpleSqlTranslator translator;
    auto sql = translator.TranslateRule(rule);
    EXPECT_TRUE(sql.ok()) << sql.status();
    if (!sql.ok()) return false;
    auto result = db_.Execute(sql.value());
    EXPECT_TRUE(result.ok()) << result.status() << "\nSQL: " << sql.value();
    return result.ok() && !result.value().rows.empty();
  }

  Database db_;
};

TEST_F(SimpleExecutionTest, JaneSimplifiedDoesNotFireOnVolga) {
  Install(VolgaPolicy());
  EXPECT_FALSE(RuleFires(JaneSimplifiedFirstRule()));
}

TEST_F(SimpleExecutionTest, FiresWhenContactBecomesMandatory) {
  p3p::Policy policy = VolgaPolicy();
  policy.statements[1].purposes[1].required = p3p::Required::kAlways;
  Install(policy);
  EXPECT_TRUE(RuleFires(JaneSimplifiedFirstRule()));
}

// ---- applicablePolicy() ----------------------------------------------------

TEST(ApplicablePolicyTest, QueryLocatesPolicyByUri) {
  Database db;
  ASSERT_TRUE(shredder::InstallOptimizedSchema(&db).ok());
  ASSERT_TRUE(shredder::InstallReferenceSchema(&db).ok());
  shredder::OptimizedShredder policy_shredder(&db);
  auto id = policy_shredder.ShredPolicy(VolgaPolicy());
  ASSERT_TRUE(id.ok());
  shredder::ReferenceShredder ref_shredder(&db);
  ASSERT_TRUE(ref_shredder
                  .ShredReferenceFile(workload::VolgaReferenceFile(),
                                      {{"/P3P/policies.xml#volga",
                                        id.value()}})
                  .ok());

  auto hit = db.Execute(ApplicablePolicyQuery("/catalog/books"));
  ASSERT_TRUE(hit.ok()) << hit.status();
  ASSERT_EQ(hit.value().rows.size(), 1u);
  EXPECT_EQ(hit.value().rows[0][0].AsInteger(), id.value());

  auto excluded = db.Execute(ApplicablePolicyQuery("/about/staff.html"));
  ASSERT_TRUE(excluded.ok()) << excluded.status();
  EXPECT_TRUE(excluded.value().rows.empty());

  auto cookie = db.Execute(
      ApplicablePolicyQuery("/session-cookie", /*for_cookie=*/true));
  ASSERT_TRUE(cookie.ok()) << cookie.status();
  EXPECT_EQ(cookie.value().rows.size(), 1u);
}

TEST(ApplicablePolicyTest, QuotesPathLiterals) {
  // A hostile path with a quote must not break out of the SQL literal.
  std::string q = ApplicablePolicyQuery("/a'b");
  EXPECT_NE(q.find("'/a''b'"), std::string::npos);
}

}  // namespace
}  // namespace p3pdb::translator
