// Tests pinning the workload to the distributions the paper reports
// (§6.2, Figure 19).

#include <gtest/gtest.h>

#include "appel/model.h"
#include "workload/corpus.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"

namespace p3pdb::workload {
namespace {

TEST(CorpusTest, MatchesPaperCounts) {
  std::vector<p3p::Policy> corpus = FortuneCorpus();
  CorpusStats stats = ComputeCorpusStats(corpus);
  EXPECT_EQ(stats.policies, 29u);   // §6.2: 29 policies
  EXPECT_EQ(stats.statements, 54u); // §6.2: 54 statements in total
}

TEST(CorpusTest, SizesApproximatePaperDistribution) {
  CorpusStats stats = ComputeCorpusStats(FortuneCorpus());
  // Paper: 1.6 - 11.9 KB, average 4.4 KB. The synthetic corpus lands in
  // the same regime.
  EXPECT_GE(stats.min_kb, 0.8) << "smallest policy implausibly small";
  EXPECT_LE(stats.min_kb, 3.0);
  EXPECT_GE(stats.max_kb, 5.0);
  EXPECT_LE(stats.max_kb, 16.0);
  EXPECT_GE(stats.avg_kb, 2.5);
  EXPECT_LE(stats.avg_kb, 6.5);
}

TEST(CorpusTest, DeterministicForSameSeed) {
  std::vector<p3p::Policy> a = FortuneCorpus();
  std::vector<p3p::Policy> b = FortuneCorpus();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(PolicySizeKb(a[i]), PolicySizeKb(b[i])) << i;
    EXPECT_EQ(a[i].name, b[i].name);
  }
  std::vector<p3p::Policy> c = FortuneCorpus({.seed = 7, .policy_count = 29});
  bool any_different = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (PolicySizeKb(a[i]) != PolicySizeKb(c[i])) any_different = true;
  }
  EXPECT_TRUE(any_different) << "different seeds must vary the corpus";
}

TEST(CorpusTest, EveryPolicyValidates) {
  for (const p3p::Policy& policy : FortuneCorpus()) {
    Status st = policy.Validate();
    EXPECT_TRUE(st.ok()) << policy.name << ": " << st;
  }
}

TEST(CorpusTest, ScalesToOtherCounts) {
  std::vector<p3p::Policy> big = FortuneCorpus({.seed = 1, .policy_count = 100});
  EXPECT_EQ(big.size(), 100u);
  for (const p3p::Policy& policy : big) {
    EXPECT_TRUE(policy.Validate().ok()) << policy.name;
  }
}

TEST(CorpusTest, ReferenceFileCoversEachPolicy) {
  std::vector<p3p::Policy> corpus = FortuneCorpus();
  p3p::ReferenceFile rf = CorpusReferenceFile(corpus);
  ASSERT_EQ(rf.refs.size(), corpus.size());
  for (const p3p::Policy& policy : corpus) {
    auto about = rf.PolicyForPath("/" + policy.name + "/index.html");
    ASSERT_TRUE(about.has_value()) << policy.name;
    EXPECT_EQ(*about, "/P3P/policies.xml#" + policy.name);
    // The public archive is excluded.
    EXPECT_EQ(rf.PolicyForPath("/" + policy.name + "/public-archive/x"),
              std::nullopt);
  }
}

TEST(JrcPreferencesTest, RuleCountsMatchFigure19) {
  for (PreferenceLevel level : AllPreferenceLevels()) {
    appel::AppelRuleset rs = JrcPreference(level);
    EXPECT_EQ(rs.RuleCount(), ExpectedRuleCount(level))
        << PreferenceLevelName(level);
    EXPECT_TRUE(rs.Validate().ok()) << PreferenceLevelName(level);
  }
}

TEST(JrcPreferencesTest, SizesOrderedLikeFigure19) {
  // Figure 19: 3.1, 2.8, 2.1, 0.9, 0.3 KB — strictly decreasing with
  // sensitivity, spanning roughly an order of magnitude.
  double prev = 1e9;
  for (PreferenceLevel level : AllPreferenceLevels()) {
    double kb = PreferenceSizeKb(JrcPreference(level));
    EXPECT_LT(kb, prev) << PreferenceLevelName(level);
    prev = kb;
  }
  EXPECT_GE(PreferenceSizeKb(JrcPreference(PreferenceLevel::kVeryHigh)), 1.5);
  EXPECT_LE(PreferenceSizeKb(JrcPreference(PreferenceLevel::kVeryHigh)), 4.5);
  EXPECT_LE(PreferenceSizeKb(JrcPreference(PreferenceLevel::kVeryLow)), 0.6);
}

TEST(JrcPreferencesTest, AverageRuleCountMatchesFigure19) {
  double total = 0;
  for (PreferenceLevel level : AllPreferenceLevels()) {
    total += static_cast<double>(JrcPreference(level).RuleCount());
  }
  EXPECT_DOUBLE_EQ(total / 5.0, 4.8);  // Figure 19's average row
}

TEST(JrcPreferencesTest, RoundTripThroughXml) {
  for (PreferenceLevel level : AllPreferenceLevels()) {
    appel::AppelRuleset rs = JrcPreference(level);
    auto parsed = appel::RulesetFromText(appel::RulesetToText(rs));
    ASSERT_TRUE(parsed.ok()) << PreferenceLevelName(level) << ": "
                             << parsed.status();
    EXPECT_EQ(parsed.value().RuleCount(), rs.RuleCount());
    EXPECT_EQ(parsed.value().ExpressionCount(), rs.ExpressionCount());
  }
}

TEST(PaperExamplesTest, VolgaSizeIsPolicySized) {
  double kb = PolicySizeKb(VolgaPolicy());
  EXPECT_GT(kb, 0.5);
  EXPECT_LT(kb, 4.0);
}

TEST(PaperExamplesTest, JaneXmlParsesBack) {
  auto parsed = appel::RulesetFromText(JanePreferenceXml());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().RuleCount(), 3u);
}

}  // namespace
}  // namespace p3pdb::workload
