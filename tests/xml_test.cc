// Tests for the XML DOM, parser, and writer.

#include <gtest/gtest.h>

#include "xml/node.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace p3pdb::xml {
namespace {

Document MustParse(std::string_view text) {
  auto result = Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(XmlParserTest, MinimalElement) {
  Document doc = MustParse("<a/>");
  EXPECT_EQ(doc.root->name(), "a");
  EXPECT_TRUE(doc.root->children().empty());
}

TEST(XmlParserTest, NestedElements) {
  Document doc = MustParse("<a><b><c/></b><d/></a>");
  ASSERT_EQ(doc.root->ChildCount(), 2u);
  EXPECT_EQ(doc.root->children()[0]->name(), "b");
  EXPECT_EQ(doc.root->children()[1]->name(), "d");
  EXPECT_EQ(doc.root->children()[0]->children()[0]->name(), "c");
}

TEST(XmlParserTest, Attributes) {
  Document doc = MustParse(
      "<DATA ref=\"#user.name\" optional='yes'/>");
  EXPECT_EQ(doc.root->AttrOr("ref", ""), "#user.name");
  EXPECT_EQ(doc.root->AttrOr("optional", ""), "yes");
  EXPECT_FALSE(doc.root->Attr("missing").has_value());
  EXPECT_EQ(doc.root->AttrOr("missing", "dflt"), "dflt");
}

TEST(XmlParserTest, TextContent) {
  Document doc = MustParse("<c>We use data for shipping</c>");
  EXPECT_EQ(doc.root->text(), "We use data for shipping");
}

TEST(XmlParserTest, EntityDecoding) {
  Document doc = MustParse("<t a=\"&lt;x&gt;\">&amp;&quot;&apos;&#65;</t>");
  EXPECT_EQ(doc.root->AttrOr("a", ""), "<x>");
  EXPECT_EQ(doc.root->text(), "&\"'A");
}

TEST(XmlParserTest, HexCharacterReference) {
  Document doc = MustParse("<t>&#x41;&#x20AC;</t>");
  EXPECT_EQ(doc.root->text(), "A\xE2\x82\xAC");  // A + euro sign in UTF-8
}

TEST(XmlParserTest, CdataSection) {
  Document doc = MustParse("<t><![CDATA[a < b & c]]></t>");
  EXPECT_EQ(doc.root->text(), "a < b & c");
}

TEST(XmlParserTest, CommentsAndPrologSkipped) {
  Document doc = MustParse(
      "<?xml version=\"1.0\"?><!-- top --><a><!-- inner --><b/></a>");
  EXPECT_EQ(doc.root->name(), "a");
  EXPECT_EQ(doc.root->ChildCount(), 1u);
}

TEST(XmlParserTest, DoctypeSkipped) {
  Document doc = MustParse("<!DOCTYPE a [ <!ELEMENT a EMPTY> ]><a/>");
  EXPECT_EQ(doc.root->name(), "a");
}

TEST(XmlParserTest, NamespacePrefixes) {
  Document doc = MustParse(
      "<appel:RULESET xmlns:appel=\"http://www.w3.org/2002/01/P3Pv1\">"
      "<appel:RULE behavior=\"block\"/></appel:RULESET>");
  EXPECT_EQ(doc.root->name(), "appel:RULESET");
  EXPECT_EQ(doc.root->LocalName(), "RULESET");
  EXPECT_EQ(doc.root->Prefix(), "appel");
  const Element* rule = doc.root->FindChild("RULE");
  ASSERT_NE(rule, nullptr);
  EXPECT_EQ(rule->AttrOr("behavior", ""), "block");
}

TEST(XmlParserTest, MismatchedEndTagFails) {
  auto result = Parse("<a><b></a></b>");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(XmlParserTest, UnterminatedElementFails) {
  EXPECT_FALSE(Parse("<a><b/>").ok());
}

TEST(XmlParserTest, TrailingContentFails) {
  EXPECT_FALSE(Parse("<a/><b/>").ok());
}

TEST(XmlParserTest, DuplicateAttributeFails) {
  EXPECT_FALSE(Parse("<a x=\"1\" x=\"2\"/>").ok());
}

TEST(XmlParserTest, UnknownEntityFails) {
  EXPECT_FALSE(Parse("<a>&unknown;</a>").ok());
}

TEST(XmlParserTest, UnterminatedAttributeFails) {
  EXPECT_FALSE(Parse("<a x=\"1/>").ok());
}

TEST(XmlParserTest, LtInAttributeFails) {
  EXPECT_FALSE(Parse("<a x=\"<\"/>").ok());
}

TEST(XmlParserTest, EmptyInputFails) { EXPECT_FALSE(Parse("").ok()); }

TEST(XmlParserTest, ErrorIncludesLocation) {
  auto result = Parse("<a>\n<b x=1/></a>");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("2:"), std::string::npos)
      << result.status();
}

TEST(XmlNodeTest, FindChildren) {
  Document doc = MustParse("<g><d i=\"1\"/><e/><d i=\"2\"/></g>");
  auto ds = doc.root->FindChildren("d");
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0]->AttrOr("i", ""), "1");
  EXPECT_EQ(ds[1]->AttrOr("i", ""), "2");
}

TEST(XmlNodeTest, FindChildByLocalNameIgnoresPrefix) {
  Document doc = MustParse("<r><appel:RULE/></r>");
  EXPECT_NE(doc.root->FindChild("RULE"), nullptr);
}

TEST(XmlNodeTest, CloneIsDeep) {
  Document doc = MustParse("<a x=\"1\"><b>t</b></a>");
  std::unique_ptr<Element> copy = doc.root->Clone();
  doc.root->SetAttr("x", "2");
  doc.root->FindChild("b")->set_text("changed");
  EXPECT_EQ(copy->AttrOr("x", ""), "1");
  EXPECT_EQ(copy->FindChild("b")->text(), "t");
}

TEST(XmlNodeTest, SubtreeSize) {
  Document doc = MustParse("<a><b><c/></b><d/></a>");
  EXPECT_EQ(doc.root->SubtreeSize(), 4u);
}

TEST(XmlNodeTest, SetAttrOverwrites) {
  Element e("x");
  e.SetAttr("k", "v1");
  e.SetAttr("k", "v2");
  EXPECT_EQ(e.attributes().size(), 1u);
  EXPECT_EQ(e.AttrOr("k", ""), "v2");
}

TEST(XmlWriterTest, RoundTripsStructure) {
  const char* text =
      "<POLICY name=\"p1\"><STATEMENT><PURPOSE><current/></PURPOSE>"
      "</STATEMENT></POLICY>";
  Document doc = MustParse(text);
  std::string serialized = Write(*doc.root);
  Document again = MustParse(serialized);
  EXPECT_EQ(again.root->name(), "POLICY");
  EXPECT_EQ(again.root->AttrOr("name", ""), "p1");
  const Element* stmt = again.root->FindChild("STATEMENT");
  ASSERT_NE(stmt, nullptr);
  const Element* purpose = stmt->FindChild("PURPOSE");
  ASSERT_NE(purpose, nullptr);
  EXPECT_NE(purpose->FindChild("current"), nullptr);
}

TEST(XmlWriterTest, EscapesSpecials) {
  Element e("t");
  e.SetAttr("a", "x<y&\"z\"");
  e.set_text("1 < 2 & 3");
  std::string out = Write(e, {.indent = false, .prolog = false});
  Document doc = MustParse(out);
  EXPECT_EQ(doc.root->AttrOr("a", ""), "x<y&\"z\"");
  EXPECT_EQ(doc.root->text(), "1 < 2 & 3");
}

TEST(XmlWriterTest, CompactModeHasNoNewlines) {
  Document doc = MustParse("<a><b/><c/></a>");
  std::string out = Write(*doc.root, {.indent = false, .prolog = false});
  EXPECT_EQ(out.find('\n'), std::string::npos);
  EXPECT_EQ(out, "<a><b/><c/></a>");
}

TEST(XmlWriterTest, PrologEmittedWhenRequested) {
  Element e("a");
  std::string out = Write(e, {.indent = true, .prolog = true});
  EXPECT_EQ(out.rfind("<?xml", 0), 0u);
}

TEST(EntitiesTest, EncodeDecodeInverse) {
  std::string original = "a<b>c&d\"e'f";
  auto decoded = DecodeEntities(EncodeEntities(original));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), original);
}

}  // namespace
}  // namespace p3pdb::xml
