// Tests for the XQuery path: the Figure 17 translator, the parser, the
// native evaluator, and the XTABLE SQL generation (including the
// complexity-budget failure that reproduces Figure 21's missing cell).

#include <gtest/gtest.h>

#include "p3p/augment.h"
#include "p3p/policy_xml.h"
#include "shredder/simple_schema.h"
#include "sqldb/database.h"
#include "sqldb/parser.h"
#include "translator/applicable_policy.h"
#include "workload/jrc_preferences.h"
#include "workload/paper_examples.h"
#include "xquery/eval.h"
#include "xquery/parser.h"
#include "xquery/translate_appel.h"
#include "xquery/xtable.h"

namespace p3pdb::xquery {
namespace {

using workload::JaneSimplifiedFirstRule;
using workload::VolgaPolicy;

TEST(TranslateTest, JaneSimplifiedMatchesFigure18Shape) {
  AppelToXQueryTranslator translator;
  auto text = translator.TranslateRule(JaneSimplifiedFirstRule());
  ASSERT_TRUE(text.ok()) << text.status();
  const std::string& q = text.value();
  EXPECT_NE(q.find("if (document(\"applicable-policy\")"), std::string::npos);
  EXPECT_NE(q.find("POLICY["), std::string::npos);
  EXPECT_NE(q.find("STATEMENT["), std::string::npos);
  EXPECT_NE(q.find("PURPOSE["), std::string::npos);
  EXPECT_NE(q.find("admin"), std::string::npos);
  EXPECT_NE(q.find("contact[@required = \"always\"]"), std::string::npos);
  EXPECT_NE(q.find(" or "), std::string::npos);
  EXPECT_NE(q.find("then <block/>"), std::string::npos);
}

TEST(TranslateTest, CatchAllRule) {
  AppelToXQueryTranslator translator;
  appel::AppelRule rule;
  rule.behavior = "request";
  auto text = translator.TranslateRule(rule);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(),
            "if (document(\"applicable-policy\")) then <request/> else ()");
}

TEST(TranslateTest, ExactConnectivesUnsupported) {
  appel::AppelRule rule = JaneSimplifiedFirstRule();
  rule.expressions[0].children[0].children[0].connective =
      appel::Connective::kOrExact;
  AppelToXQueryTranslator translator;
  auto text = translator.TranslateRule(rule);
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kUnsupported);
}

TEST(ParserTest, RoundTripIsFixedPoint) {
  AppelToXQueryTranslator translator;
  auto text = translator.TranslateRule(JaneSimplifiedFirstRule());
  ASSERT_TRUE(text.ok());
  auto query = ParseQuery(text.value());
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query.value().ToString(), text.value());
  EXPECT_EQ(query.value().behavior, "block");
  EXPECT_EQ(query.value().document_arg, "applicable-policy");
}

TEST(ParserTest, HandWrittenQuery) {
  auto query = ParseQuery(
      "if (document(\"applicable-policy\")[POLICY[STATEMENT[PURPOSE["
      "(admin) or (contact[@required = \"always\"])]]]]) then <block/>");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_EQ(query.value().conditions.size(), 1u);
  EXPECT_EQ(query.value().conditions[0].kind, CondKind::kPathExists);
}

TEST(ParserTest, NotAndNesting) {
  auto query = ParseQuery(
      "if (document(\"d\")[POLICY[not(STATEMENT[PURPOSE[telemarketing]]) "
      "and ACCESS[none]]]) then <b/> else ()");
  ASSERT_TRUE(query.ok()) << query.status();
}

TEST(ParserTest, Rejections) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("if (POLICY) then <b/>").ok());
  EXPECT_FALSE(ParseQuery("if (document(\"d\")[") .ok());
  EXPECT_FALSE(
      ParseQuery("if (document(\"d\")) then <b/> trailing").ok());
}

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() {
    p3p::Policy policy = VolgaPolicy();
    dom_ = p3p::PolicyToXml(policy);
    augmented_ = p3p::AugmentPolicyXml(*dom_);
  }

  bool Fires(const appel::AppelRule& rule, const xml::Element& evidence) {
    AppelToXQueryTranslator translator;
    auto text = translator.TranslateRule(rule);
    EXPECT_TRUE(text.ok()) << text.status();
    auto query = ParseQuery(text.value());
    EXPECT_TRUE(query.ok()) << query.status();
    auto fired = EvalQuery(query.value(), evidence);
    EXPECT_TRUE(fired.ok()) << fired.status();
    return fired.ok() && fired.value();
  }

  std::unique_ptr<xml::Element> dom_;
  std::unique_ptr<xml::Element> augmented_;
};

TEST_F(EvalTest, JaneSimplifiedOnVolga) {
  EXPECT_FALSE(Fires(JaneSimplifiedFirstRule(), *dom_));
}

TEST_F(EvalTest, FiresOnMandatoryContact) {
  p3p::Policy policy = VolgaPolicy();
  policy.statements[1].purposes[1].required = p3p::Required::kAlways;
  std::unique_ptr<xml::Element> dom = p3p::PolicyToXml(policy);
  EXPECT_TRUE(Fires(JaneSimplifiedFirstRule(), *dom));
}

TEST_F(EvalTest, FullJanePreferenceAgainstVolga) {
  // Rule by rule: neither block rule fires, the catch-all does.
  appel::AppelRuleset jane = workload::JanePreference();
  AppelToXQueryTranslator translator;
  auto compiled = translator.TranslateRuleset(jane);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  std::vector<bool> fired;
  for (const std::string& text : compiled.value().rule_queries) {
    auto query = ParseQuery(text);
    ASSERT_TRUE(query.ok()) << query.status();
    auto result = EvalQuery(query.value(), *augmented_);
    ASSERT_TRUE(result.ok());
    fired.push_back(result.value());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true}));
}

TEST(EvalCondTest, AttributeDefaults) {
  xml::Element contact("contact");
  Cond cond;
  cond.kind = CondKind::kAttrEquals;
  cond.attr_name = "required";
  cond.attr_value = "always";
  EXPECT_TRUE(EvalCond(cond, contact));
  cond.attr_value = "opt-in";
  EXPECT_FALSE(EvalCond(cond, contact));
  contact.SetAttr("required", "opt-in");
  EXPECT_TRUE(EvalCond(cond, contact));
  // Unknown attributes have no default.
  Cond other;
  other.kind = CondKind::kAttrEquals;
  other.attr_name = "color";
  other.attr_value = "red";
  EXPECT_FALSE(EvalCond(other, contact));
}

// ---- XTABLE ----------------------------------------------------------------

class XTableTest : public ::testing::Test {
 protected:
  void Install(const p3p::Policy& policy) {
    ASSERT_TRUE(shredder::InstallSimpleSchema(&db_).ok());
    ASSERT_TRUE(
        db_.ExecuteScript(translator::ApplicablePolicyDdl()).ok());
    shredder::SimpleShredder shredder(&db_);
    p3p::Policy prepared = p3p::Canonicalized(policy);
    p3p::AugmentPolicy(&prepared);
    std::unique_ptr<xml::Element> dom = p3p::PolicyToXml(prepared);
    auto id = shredder.ShredPolicy(*dom);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(db_
                    .InsertRow("ApplicablePolicy",
                               {sqldb::Value::Integer(id.value())})
                    .ok());
  }

  Result<std::string> Translate(const appel::AppelRule& rule) {
    AppelToXQueryTranslator to_xq;
    P3PDB_ASSIGN_OR_RETURN(std::string text, to_xq.TranslateRule(rule));
    P3PDB_ASSIGN_OR_RETURN(Query query, ParseQuery(text));
    XTableTranslator to_sql;
    return to_sql.TranslateQuery(query);
  }

  sqldb::Database db_;
};

TEST_F(XTableTest, GeneratesUnmergedSimpleSchemaSql) {
  auto sql = Translate(JaneSimplifiedFirstRule());
  ASSERT_TRUE(sql.ok()) << sql.status();
  // Unmerged: the per-vocabulary tables appear, as in Figure 13.
  EXPECT_NE(sql.value().find("FROM Admin"), std::string::npos);
  EXPECT_NE(sql.value().find("FROM Contact"), std::string::npos);
  EXPECT_EQ(sql.value().find("Purpose.purpose ="), std::string::npos);
}

TEST_F(XTableTest, DoesNotFireOnVolga) {
  Install(VolgaPolicy());
  auto sql = Translate(JaneSimplifiedFirstRule());
  ASSERT_TRUE(sql.ok()) << sql.status();
  auto result = db_.Execute(sql.value());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result.value().rows.empty());
}

TEST_F(XTableTest, FiresOnMandatoryContact) {
  p3p::Policy policy = VolgaPolicy();
  policy.statements[1].purposes[1].required = p3p::Required::kAlways;
  Install(policy);
  auto sql = Translate(JaneSimplifiedFirstRule());
  ASSERT_TRUE(sql.ok());
  auto result = db_.Execute(sql.value());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0][0].AsText(), "block");
}

TEST_F(XTableTest, MediumPreferenceExceedsComplexityBudget) {
  // The Figure 21 artifact: with a bounded statement complexity budget the
  // XTABLE translation of the Medium preference cannot be prepared, while
  // High (shallower patterns) can.
  sqldb::Database limited(sqldb::Database::Options{
      .max_subquery_depth = 6, .enforce_foreign_keys = false});
  ASSERT_TRUE(shredder::InstallSimpleSchema(&limited).ok());
  ASSERT_TRUE(
      limited.ExecuteScript(translator::ApplicablePolicyDdl()).ok());

  auto prepare_level = [&](workload::PreferenceLevel level) -> Status {
    appel::AppelRuleset rs = workload::JrcPreference(level);
    AppelToXQueryTranslator to_xq;
    XTableTranslator to_sql;
    for (const appel::AppelRule& rule : rs.rules) {
      auto text = to_xq.TranslateRule(rule);
      if (!text.ok()) return text.status();
      auto query = ParseQuery(text.value());
      if (!query.ok()) return query.status();
      auto sql = to_sql.TranslateQuery(query.value());
      if (!sql.ok()) return sql.status();
      auto stmt = sqldb::ParseStatement(sql.value());
      if (!stmt.ok()) return stmt.status();
      sqldb::Binder binder(limited, 6);
      Status st = binder.BindSelect(
          static_cast<sqldb::SelectStmt*>(stmt.value().get()));
      if (!st.ok()) return st;
    }
    return Status::OK();
  };

  Status medium = prepare_level(workload::PreferenceLevel::kMedium);
  ASSERT_FALSE(medium.ok());
  EXPECT_EQ(medium.code(), StatusCode::kLimitExceeded);

  EXPECT_TRUE(prepare_level(workload::PreferenceLevel::kHigh).ok());
  EXPECT_TRUE(prepare_level(workload::PreferenceLevel::kVeryHigh).ok());
  EXPECT_TRUE(prepare_level(workload::PreferenceLevel::kLow).ok());
  EXPECT_TRUE(prepare_level(workload::PreferenceLevel::kVeryLow).ok());
}

}  // namespace
}  // namespace p3pdb::xquery
